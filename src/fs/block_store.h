// BlockStore: how file machinery (block mapper, directory code) touches
// blocks. Two implementations make the same mapping code serve both plain
// and hidden files:
//
//   CacheBlockStore     - plain blocks, straight through the buffer cache
//   EncryptedBlockStore - hidden blocks: AES-CBC-ESSIV encrypt on write,
//                         decrypt on read, keyed by the file's FAK
//
// BlockAllocator is the matching allocation seam: PlainFs allocates by
// bitmap policy; a hidden file allocates from its internal free-block pool
// (which refills from random bitmap allocations, per paper 3.1).
#ifndef STEGFS_FS_BLOCK_STORE_H_
#define STEGFS_FS_BLOCK_STORE_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "cache/buffer_cache.h"
#include "crypto/block_crypter.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

class BlockStore {
 public:
  virtual ~BlockStore() = default;
  virtual uint32_t block_size() const = 0;
  virtual Status ReadBlock(uint64_t block, uint8_t* buf) = 0;
  virtual Status WriteBlock(uint64_t block, const uint8_t* buf) = 0;
};

class CacheBlockStore : public BlockStore {
 public:
  explicit CacheBlockStore(BufferCache* cache) : cache_(cache) {}
  uint32_t block_size() const override { return cache_->block_size(); }
  Status ReadBlock(uint64_t block, uint8_t* buf) override {
    return cache_->Read(block, buf);
  }
  Status WriteBlock(uint64_t block, const uint8_t* buf) override {
    return cache_->Write(block, buf);
  }

 private:
  BufferCache* cache_;
};

class EncryptedBlockStore : public BlockStore {
 public:
  EncryptedBlockStore(BufferCache* cache, const crypto::BlockCrypter* crypter)
      : cache_(cache), crypter_(crypter) {}
  uint32_t block_size() const override { return cache_->block_size(); }

  Status ReadBlock(uint64_t block, uint8_t* buf) override {
    STEGFS_RETURN_IF_ERROR(cache_->Read(block, buf));
    crypter_->DecryptBlock(block, buf, cache_->block_size());
    return Status::OK();
  }

  Status WriteBlock(uint64_t block, const uint8_t* buf) override {
    // Copy so the caller's plaintext buffer is left untouched.
    std::vector<uint8_t> tmp(buf, buf + cache_->block_size());
    crypter_->EncryptBlock(block, tmp.data(), tmp.size());
    return cache_->Write(block, tmp.data());
  }

 private:
  BufferCache* cache_;
  const crypto::BlockCrypter* crypter_;
};

class BlockAllocator {
 public:
  virtual ~BlockAllocator() = default;
  // Returns a block already marked allocated in the bitmap.
  virtual StatusOr<uint64_t> AllocateBlock() = 0;
  // Releases a block back (to the bitmap or to a hidden file's pool).
  virtual Status FreeBlock(uint64_t block) = 0;
};

// Coalesces repeated writes to the same block within one logical operation
// (read-your-writes semantics), flushing each block once, in ascending LBA
// order. FileIo::Write uses this so that indirect-pointer blocks — which
// are updated on every data-block allocation — reach the device once per
// operation instead of once per block, matching what any write-back buffer
// cache does and keeping sequential files sequential on the device.
class CoalescingStore : public BlockStore {
 public:
  explicit CoalescingStore(BlockStore* inner) : inner_(inner) {}

  uint32_t block_size() const override { return inner_->block_size(); }

  Status ReadBlock(uint64_t block, uint8_t* buf) override {
    auto it = pending_.find(block);
    if (it != pending_.end()) {
      std::memcpy(buf, it->second.data(), it->second.size());
      return Status::OK();
    }
    return inner_->ReadBlock(block, buf);
  }

  Status WriteBlock(uint64_t block, const uint8_t* buf) override {
    auto [it, inserted] = pending_.try_emplace(block);
    it->second.assign(buf, buf + inner_->block_size());
    return Status::OK();
  }

  // Writes all pending blocks through, ascending by LBA (std::map order).
  Status Flush() {
    for (const auto& [block, data] : pending_) {
      STEGFS_RETURN_IF_ERROR(inner_->WriteBlock(block, data.data()));
    }
    pending_.clear();
    return Status::OK();
  }

 private:
  BlockStore* inner_;
  std::map<uint64_t, std::vector<uint8_t>> pending_;
};

}  // namespace stegfs

#endif  // STEGFS_FS_BLOCK_STORE_H_
