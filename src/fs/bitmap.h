// The block bitmap (paper 3.1): one bit per block, 1 = allocated. Plain
// files, hidden files, dummy files and abandoned blocks ALL mark their
// blocks here — that shared marking is what protects hidden data from being
// overwritten (StegFS design objective (a)) while revealing nothing about
// which unlisted blocks are abandoned vs hidden.
//
// The bitmap is held in memory and written back block-by-block on Flush;
// dirty tracking keeps flush I/O proportional to what changed.
//
// Thread-safety: an internal reader-writer lock makes every public call
// atomic. Queries (IsAllocated, free_count) take the lock shared — this is
// what keeps hidden-header locator probing read-parallel across sessions —
// while mutations (Allocate, Free, the policy allocators, Store) take it
// exclusively. Allocate/Free's double-alloc/double-free errors double as
// atomic test-and-set: a caller that loses an allocation race gets
// FailedPrecondition rather than a torn bit.
#ifndef STEGFS_FS_BITMAP_H_
#define STEGFS_FS_BITMAP_H_

#include <cstdint>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "cache/buffer_cache.h"
#include "fs/layout.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

// Allocation placement policies. The comparison systems of Table 4 differ
// only in placement: CleanDisk allocates contiguously, FragDisk in scattered
// 8-block fragments, StegFS hidden objects uniformly at random.
enum class AllocPolicy {
  kContiguous,   // first-fit contiguous run (CleanDisk)
  kFragmented8,  // scattered fragments of 8 blocks (FragDisk)
  kRandom,       // uniform random free block (StegFS hidden allocation)
};

class BlockBitmap {
 public:
  // Builds an all-free bitmap for `layout` (metadata blocks pre-marked).
  explicit BlockBitmap(const Layout& layout);

  // Moves are for construction-time plumbing (Mount assigning the loaded
  // bitmap into place) and are NOT thread-safe: no other thread may touch
  // either side during a move.
  BlockBitmap(BlockBitmap&& other) noexcept;
  BlockBitmap& operator=(BlockBitmap&& other) noexcept;

  // Loads the bitmap from its on-disk region through `cache`.
  static StatusOr<BlockBitmap> Load(BufferCache* cache, const Layout& layout);

  // Writes dirty bitmap blocks back through `cache`.
  Status Store(BufferCache* cache);

  // Snapshots the after-image of every dirty bitmap device block into
  // `out` (appending) and clears the dirty flags — the journal's txn
  // commit consumes this instead of Store, then checkpoints the images
  // through the cache itself. The snapshot is taken under the exclusive
  // lock, so it is a consistent point-in-time image even while hidden
  // sessions allocate concurrently (their half-done claims may ride along
  // as allocated-but-unreferenced bits, which the StegFS design already
  // absorbs as abandoned blocks).
  void CollectDirty(std::vector<std::pair<uint64_t, std::vector<uint8_t>>>*
                        out);
  // Re-marks EVERY bitmap device block dirty. The journal's commit-
  // failure path uses it: CollectDirty consumed the dirty flags, and if
  // the record never committed those blocks must reach disk through the
  // ordinary Store path instead of silently diverging.
  void MarkAllDirty();

  bool IsAllocated(uint64_t block) const;
  uint64_t free_count() const;
  // One-shot copy of the raw bit array under a single lock hold — for
  // whole-volume scans (fsck) that would otherwise take the lock once
  // per block. Bit b of the copy is (bits[b/8] >> (b%8)) & 1.
  std::vector<uint8_t> SnapshotBits() const;
  uint64_t total_count() const { return layout_.num_blocks; }

  // Marks a specific block. Fails with FailedPrecondition on double
  // alloc/free — catching those bugs early is worth the branch.
  Status Allocate(uint64_t block);
  Status Free(uint64_t block);

  // Policy-driven allocation of one block from the data region.
  // `rng` is only used by kRandom and kFragmented8.
  StatusOr<uint64_t> AllocateByPolicy(AllocPolicy policy, Xoshiro* rng);

  // First-fit contiguous run of `count` data blocks (CleanDisk whole-file
  // placement). All-or-nothing.
  StatusOr<std::vector<uint64_t>> AllocateContiguous(uint64_t count);

  // For tests and the deniability auditor.
  const Layout& layout() const { return layout_; }

 private:
  bool TestBit(uint64_t block) const {
    return (bits_[block / 8] >> (block % 8)) & 1;
  }
  void SetBit(uint64_t block, bool value);
  void MarkMetadataRegion();
  StatusOr<uint64_t> AllocateFirstFit(uint64_t start_hint);
  StatusOr<uint64_t> AllocateRandom(Xoshiro* rng);

  mutable std::shared_mutex mu_;
  Layout layout_;
  std::vector<uint8_t> bits_;
  std::vector<bool> dirty_blocks_;  // per bitmap *device* block
  uint64_t free_count_ = 0;
  uint64_t contiguous_cursor_ = 0;  // next-fit cursor for kContiguous
  uint64_t fragment_cursor_ = 0;    // stride cursor for kFragmented8
  uint32_t fragment_remaining_ = 0;
  uint64_t fragment_next_ = 0;
};

}  // namespace stegfs

#endif  // STEGFS_FS_BITMAP_H_
