// BufferCache: a sharded, thread-safe LRU block cache between the
// file-system drivers and the block device — the user-space stand-in for
// the Linux buffer cache layer in the paper's figure 5 architecture.
//
// Sharding: the capacity is split across `shard_count` independent shards
// (per-shard LRU list + hash map), and a block's shard is fixed by a keyed
// stripe mapping (concurrency/shard_lock.h). Each shard is guarded by its
// own stripe lock, held across the shard's device I/O too — that is what
// makes a concurrent miss on the SAME block read the device exactly once,
// and what keeps write-back eviction correct under contention (a victim's
// write-back completes before its entry disappears, so no reader can see
// the device's stale bytes through a cache gap). Operations on blocks in
// different shards proceed fully in parallel.
//
// Statistics are plain atomics: readers (hit-rate probes, the C API's
// steg_stats) never take any lock.
//
// Single-threaded determinism: with one shard this behaves exactly like the
// classic single-list LRU. Auto-sharding (shard_count = 0) keeps small
// caches — every cache a test constructs — at one shard, so seeded tests
// see the historical eviction order; big caches get up to 16 shards.
//
// Write policy is configurable:
//   kWriteBack    - dirty blocks written on eviction / Flush (default; what
//                   a kernel buffer cache does)
//   kWriteThrough - every Write goes straight to the device (used by the
//                   benchmarks so each logical operation's trace contains
//                   its own writes, making interleaved replay attribution
//                   exact)
#ifndef STEGFS_CACHE_BUFFER_CACHE_H_
#define STEGFS_CACHE_BUFFER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.h"
#include "concurrency/shard_lock.h"
#include "util/status.h"

namespace stegfs {

enum class WritePolicy { kWriteBack, kWriteThrough };

// A point-in-time snapshot of the cache counters (taken lock-free).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class BufferCache {
 public:
  // `device` must outlive the cache. capacity_blocks >= 1. shard_count 0 =
  // auto: one shard per 64 blocks of capacity, clamped to [1, 16].
  BufferCache(BlockDevice* device, size_t capacity_blocks,
              WritePolicy policy = WritePolicy::kWriteBack,
              size_t shard_count = 0);
  ~BufferCache();

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  uint32_t block_size() const { return device_->block_size(); }
  uint64_t num_blocks() const { return device_->num_blocks(); }

  // Reads a whole block through the cache. `out` holds block_size() bytes.
  Status Read(uint64_t block, uint8_t* out);
  // Writes a whole block through the cache.
  Status Write(uint64_t block, const uint8_t* data);

  // Writes back all dirty blocks and flushes the device.
  Status Flush();
  // Discards every cached block (dirty contents are LOST — recovery paths
  // use this after rewriting the device underneath the cache).
  void DropAll();

  CacheStats stats() const;                    // lock-free snapshot
  double hit_rate() const { return stats().HitRate(); }
  size_t size() const;                         // cached blocks, all shards
  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    uint64_t block;
    std::vector<uint8_t> data;
    bool dirty = false;
  };
  using EntryList = std::list<Entry>;

  // One LRU domain; guarded by the same-index stripe of `locks_`.
  struct Shard {
    size_t capacity = 1;
    EntryList lru;  // front = most recently used
    std::unordered_map<uint64_t, EntryList::iterator> map;
  };

  static size_t AutoShardCount(size_t capacity_blocks);

  // All helpers below run with the shard's stripe held exclusively.
  Entry& Touch(Shard* shard, EntryList::iterator it);
  Status EnsureRoom(Shard* shard);
  Status FlushShard(Shard* shard);

  BlockDevice* device_;
  size_t capacity_;
  WritePolicy policy_;
  concurrency::StripedSharedMutex locks_;
  std::vector<Shard> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> writebacks_{0};
};

}  // namespace stegfs

#endif  // STEGFS_CACHE_BUFFER_CACHE_H_
