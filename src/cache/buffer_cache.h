// BufferCache: a sharded, thread-safe LRU block cache between the
// file-system drivers and the block device — the user-space stand-in for
// the Linux buffer cache layer in the paper's figure 5 architecture.
//
// Sharding: the capacity is split across `shard_count` independent shards
// (per-shard LRU list + hash map), and a block's shard is fixed by a keyed
// stripe mapping (concurrency/shard_lock.h) so hot contiguous ranges
// spread across every shard. Each shard is guarded by its own stripe
// lock, held across the shard's device I/O too — that is what makes a
// concurrent miss on the SAME block read the device exactly once, and
// what keeps write-back eviction correct under contention (a victim's
// write-back completes before its entry disappears, so no reader can see
// the device's stale bytes through a cache gap). Operations on blocks in
// different shards proceed fully in parallel.
//
// Sharding vs coalescing: the keyed mapping scatters a contiguous extent
// across shards, so a batch's vectored device calls (one per shard, under
// that shard's lock) rarely form contiguous runs on a multi-shard cache —
// parallelism is bought with device-run locality. A single-session
// sequential mount should use cache_shards = 1: the whole extent then
// leaves as one coalescable device call (bench_seq_throughput does this).
//
// Statistics are plain atomics: readers (hit-rate probes, the C API's
// steg_stats) never take any lock.
//
// Single-threaded determinism: with one shard this behaves exactly like the
// classic single-list LRU. Auto-sharding (shard_count = 0) keeps small
// caches — every cache a test constructs — at one shard, so seeded tests
// see the historical eviction order; big caches get up to 16 shards.
//
// Write policy is configurable:
//   kWriteBack    - dirty blocks written on eviction / Flush (default; what
//                   a kernel buffer cache does)
//   kWriteThrough - every Write goes straight to the device (used by the
//                   benchmarks so each logical operation's trace contains
//                   its own writes, making interleaved replay attribution
//                   exact)
#ifndef STEGFS_CACHE_BUFFER_CACHE_H_
#define STEGFS_CACHE_BUFFER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.h"
#include "concurrency/shard_lock.h"
#include "concurrency/thread_pool.h"
#include "util/status.h"

namespace stegfs {

enum class WritePolicy { kWriteBack, kWriteThrough };

// A point-in-time snapshot of the cache counters (taken lock-free).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  // Blocks moved through ReadBatch / WriteBatch.
  uint64_t batched_reads = 0;
  uint64_t batched_writes = 0;
  // Blocks inserted by the async prefetcher, and how many of those were
  // later claimed by a demand read before eviction.
  uint64_t prefetched = 0;
  uint64_t prefetch_hits = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class BufferCache {
 public:
  // `device` must outlive the cache. capacity_blocks >= 1. shard_count 0 =
  // auto: one shard per 64 blocks of capacity, clamped to [1, 16].
  BufferCache(BlockDevice* device, size_t capacity_blocks,
              WritePolicy policy = WritePolicy::kWriteBack,
              size_t shard_count = 0);
  ~BufferCache();

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  uint32_t block_size() const { return device_->block_size(); }
  uint64_t num_blocks() const { return device_->num_blocks(); }

  // Reads a whole block through the cache. `out` holds block_size() bytes.
  Status Read(uint64_t block, uint8_t* out);
  // Writes a whole block through the cache.
  Status Write(uint64_t block, const uint8_t* data);

  // Batched read of n blocks (any numbers, duplicates allowed) into the
  // contiguous buffer `out` (n * block_size() bytes, request order).
  // Processed one shard at a time — only that shard's lock is held, so
  // other shards stay fully parallel under concurrent sessions — with the
  // shard's misses leaving as ONE vectored ReadBlocks call (a single
  // coalescable transfer when the cache has one shard). Per shard,
  // hit/miss accounting, LRU updates and eviction order match a per-block
  // Read loop exactly (the seeded tests rely on this).
  Status ReadBatch(const uint64_t* blocks, size_t n, uint8_t* out);
  // Batched write of n blocks from the contiguous buffer `data`; same
  // locking scheme. Under kWriteThrough the device sees one vectored
  // WriteBlocks call per shard group (request order; on a mid-batch
  // device error the group's cached entries are invalidated so the cache
  // can never serve bytes older than the device); entry updates then
  // replay in request order, matching the per-block loop.
  Status WriteBatch(const uint64_t* blocks, size_t n, const uint8_t* data);

  // Attaches the worker pool the async prefetcher runs on (nullptr
  // detaches; then Prefetch becomes a no-op). The pool must outlive the
  // cache or be detached first.
  void SetPrefetchPool(concurrency::ThreadPool* pool);
  // Schedules a background load of the given blocks into the cache
  // (best-effort: errors are swallowed, already-cached blocks skipped).
  // A later demand read that claims a prefetched entry counts as a normal
  // hit plus one prefetch_hit.
  void Prefetch(const uint64_t* blocks, size_t n);

  // Writes back all dirty blocks and flushes the device.
  Status Flush();
  // Discards every cached block (dirty contents are LOST — recovery paths
  // use this after rewriting the device underneath the cache).
  void DropAll();

  CacheStats stats() const;                    // lock-free snapshot
  double hit_rate() const { return stats().HitRate(); }
  size_t size() const;                         // cached blocks, all shards
  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    uint64_t block;
    std::vector<uint8_t> data;
    bool dirty = false;
    // Inserted by the prefetcher and not yet claimed by a demand access.
    bool prefetched = false;
  };
  using EntryList = std::list<Entry>;

  // One LRU domain; guarded by the same-index stripe of `locks_`.
  struct Shard {
    size_t capacity = 1;
    EntryList lru;  // front = most recently used
    std::unordered_map<uint64_t, EntryList::iterator> map;
  };

  static size_t AutoShardCount(size_t capacity_blocks);

  size_t ShardOf(uint64_t block) const { return locks_.StripeOf(block); }

  // All helpers below run with the shard's stripe held exclusively.
  Entry& Touch(Shard* shard, EntryList::iterator it);
  Status EnsureRoom(Shard* shard);
  Status FlushShard(Shard* shard);
  // Counts a demand hit on `e`, claiming its prefetched flag if set.
  void CountHit(Entry& e);
  // Loads the listed blocks into one shard (missing ones only) with a
  // single vectored device read. Used by the prefetcher.
  void PopulateShard(size_t idx, const std::vector<uint64_t>& blocks);

  // Request positions grouped per shard, in request order (index into the
  // caller's blocks array). Shards with no requests are empty.
  std::vector<std::vector<size_t>> GroupByShard(const uint64_t* blocks,
                                                size_t n) const;

  BlockDevice* device_;
  size_t capacity_;
  WritePolicy policy_;
  concurrency::StripedSharedMutex locks_;
  std::vector<Shard> shards_;
  std::atomic<concurrency::ThreadPool*> prefetch_pool_{nullptr};

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> writebacks_{0};
  std::atomic<uint64_t> batched_reads_{0};
  std::atomic<uint64_t> batched_writes_{0};
  std::atomic<uint64_t> prefetched_{0};
  std::atomic<uint64_t> prefetch_hits_{0};
};

}  // namespace stegfs

#endif  // STEGFS_CACHE_BUFFER_CACHE_H_
