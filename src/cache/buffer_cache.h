// BufferCache: a sharded, thread-safe LRU block cache between the
// file-system drivers and the block device — the user-space stand-in for
// the Linux buffer cache layer in the paper's figure 5 architecture.
//
// Sharding: the capacity is split across `shard_count` independent shards
// (per-shard LRU list + hash map), and a block's shard is fixed by a keyed
// stripe mapping (concurrency/shard_lock.h) so hot contiguous ranges
// spread across every shard. Each shard is guarded by its own stripe
// lock, held across the shard's device I/O too — that is what makes a
// concurrent miss on the SAME block read the device exactly once, and
// what keeps write-back eviction correct under contention (a victim's
// write-back completes before its entry disappears, so no reader can see
// the device's stale bytes through a cache gap). Operations on blocks in
// different shards proceed fully in parallel.
//
// Sharding vs coalescing: the keyed mapping scatters a contiguous extent
// across shards, so a batch's vectored device calls (one per shard, under
// that shard's lock) rarely form contiguous runs on a multi-shard cache —
// parallelism is bought with device-run locality. A single-session
// sequential mount should use cache_shards = 1: the whole extent then
// leaves as one coalescable device call (bench_seq_throughput does this).
//
// Statistics are obs::Counter instruments (relaxed atomics): readers
// (hit-rate probes, the C API's steg_stats) never take any lock, and a
// mount registers them with its MetricsRegistry (RegisterMetrics) so
// they scrape through steg_metrics_text() under stable names.
//
// Single-threaded determinism: with one shard this behaves exactly like the
// classic single-list LRU. Auto-sharding (shard_count = 0) keeps small
// caches — every cache a test constructs — at one shard, so seeded tests
// see the historical eviction order; big caches get up to 16 shards.
//
// Write policy is configurable:
//   kWriteBack    - dirty blocks written on eviction / Flush (default; what
//                   a kernel buffer cache does)
//   kWriteThrough - every Write goes straight to the device (used by the
//                   benchmarks so each logical operation's trace contains
//                   its own writes, making interleaved replay attribution
//                   exact)
#ifndef STEGFS_CACHE_BUFFER_CACHE_H_
#define STEGFS_CACHE_BUFFER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "blockdev/async_block_device.h"
#include "blockdev/block_device.h"
#include "concurrency/shard_lock.h"
#include "concurrency/thread_pool.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace stegfs {

enum class WritePolicy { kWriteBack, kWriteThrough };

// A point-in-time snapshot of the cache counters (taken lock-free).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  // Blocks moved through ReadBatch / WriteBatch.
  uint64_t batched_reads = 0;
  uint64_t batched_writes = 0;
  // Blocks inserted by the async prefetcher, and how many of those were
  // later claimed by a demand read before eviction.
  uint64_t prefetched = 0;
  uint64_t prefetch_hits = 0;
  // Blocks moved through the async batch paths (subset of batched_*).
  uint64_t async_batched_reads = 0;
  uint64_t async_batched_writes = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

// Waitable handle for one async cache batch: aggregates the per-shard
// engine tickets plus the status of the inline (hit-only) part. Wait()
// blocks until every group's device I/O AND cache insertion has finished,
// returning the first error. Callers must not hold any cache shard lock
// while waiting (completion handlers acquire shard locks).
class CacheIoTicket {
 public:
  Status Wait() {
    Status first = base_;
    for (IoTicket& t : tickets_) {
      Status s = t.Wait();
      if (first.ok() && !s.ok()) first = s;
    }
    return first;
  }

 private:
  friend class BufferCache;
  Status base_;
  std::vector<IoTicket> tickets_;
};

class BufferCache {
 public:
  // `device` must outlive the cache. capacity_blocks >= 1. shard_count 0 =
  // auto: one shard per 64 blocks of capacity, clamped to [1, 16].
  BufferCache(BlockDevice* device, size_t capacity_blocks,
              WritePolicy policy = WritePolicy::kWriteBack,
              size_t shard_count = 0);
  ~BufferCache();

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  uint32_t block_size() const { return device_->block_size(); }
  uint64_t num_blocks() const { return device_->num_blocks(); }

  // Reads a whole block through the cache. `out` holds block_size() bytes.
  Status Read(uint64_t block, uint8_t* out);
  // Writes a whole block through the cache.
  Status Write(uint64_t block, const uint8_t* data);

  // Batched read of n blocks (any numbers, duplicates allowed) into the
  // contiguous buffer `out` (n * block_size() bytes, request order).
  // Processed one shard at a time — only that shard's lock is held, so
  // other shards stay fully parallel under concurrent sessions — with the
  // shard's misses leaving as ONE vectored ReadBlocks call (a single
  // coalescable transfer when the cache has one shard). Per shard,
  // hit/miss accounting, LRU updates and eviction order match a per-block
  // Read loop exactly (the seeded tests rely on this).
  Status ReadBatch(const uint64_t* blocks, size_t n, uint8_t* out);
  // Batched write of n blocks from the contiguous buffer `data`; same
  // locking scheme. Under kWriteThrough the device sees one vectored
  // WriteBlocks call per shard group (request order; on a mid-batch
  // device error the group's cached entries are invalidated so the cache
  // can never serve bytes older than the device); entry updates then
  // replay in request order, matching the per-block loop.
  Status WriteBatch(const uint64_t* blocks, size_t n, const uint8_t* data);

  // Attaches an async I/O engine. While attached, ReadBatchAsync /
  // WriteBatchAsync submit real asynchronous device I/O and Prefetch
  // becomes a pure submitter (no thread pool needed). The engine must be
  // drained and destroyed before the cache (PlainFs declares it after the
  // cache for exactly this reason) or detached first. nullptr detaches;
  // the async entry points then degrade to the synchronous batch calls.
  void SetAsyncEngine(AsyncBlockDevice* engine);
  AsyncBlockDevice* async_engine() const {
    return async_engine_.load(std::memory_order_acquire);
  }

  // Async batch read: hits are copied to `out` inline; each shard's
  // distinct misses are submitted to the engine as one batch WITHOUT the
  // shard lock held across the wait (the PR 3 sync path holds it — that
  // is its concurrent-miss dedup, and why it cannot overlap anything).
  // The completion handler re-acquires the shard lock and inserts the
  // fetched blocks, guarded by a per-shard generation counter: if any
  // write/invalidation touched the shard since submission, the inserts
  // are skipped, so the cache can never serve bytes older than the
  // device. Counter parity with the sync path: pass-1 hits and distinct
  // misses count identically; insert-time eviction replay happens only
  // when the generation guard admits the insert.
  //
  // `blocks` and `out` must stay alive until Wait() returns.
  CacheIoTicket ReadBatchAsync(const uint64_t* blocks, size_t n,
                               uint8_t* out);
  // Async batch write (write-through only — under write-back the device
  // is not involved, so this degrades to the synchronous WriteBatch).
  // Device batches are submitted per shard group; each submission claims
  // the shard's next write sequence, and the completion handler replays
  // the entry updates under the shard lock PER BLOCK: an entry a newer
  // write already updated is kept, older-or-unwritten entries take this
  // batch's bytes, and a block whose entry is gone is re-inserted only
  // while this batch's claim is still the block's latest — so a
  // pipeline's sibling sub-batches (disjoint blocks) all stay cached.
  // On a mid-batch device error the group's cached entries are
  // invalidated — mirroring the PR 3 write-through contract — so the
  // cache re-reads the device's authoritative bytes. A batch containing
  // duplicate blocks degrades to the synchronous path (async batches
  // have no intra-batch ordering), and concurrent UNSERIALIZED writes to
  // the same block remain the caller's race, exactly as with a real
  // kernel page cache — every in-tree writer serializes per object.
  //
  // `blocks` and `data` must stay alive until Wait() returns.
  CacheIoTicket WriteBatchAsync(const uint64_t* blocks, size_t n,
                                const uint8_t* data);

  // Attaches the worker pool the async prefetcher runs on (nullptr
  // detaches; then Prefetch becomes a no-op unless an async engine is
  // attached). The pool must outlive the cache or be detached first.
  void SetPrefetchPool(concurrency::ThreadPool* pool);
  // Schedules a background load of the given blocks into the cache
  // (best-effort: errors are swallowed, already-cached blocks skipped).
  // A later demand read that claims a prefetched entry counts as a normal
  // hit plus one prefetch_hit.
  void Prefetch(const uint64_t* blocks, size_t n);

  // Writes back all dirty blocks and flushes the device.
  Status Flush();
  // Ordered group writeback — the journal's ordered-data phase: pushes
  // every dirty block (minus `hold_back` and the parked set) to the
  // device WITHOUT the trailing device Flush, so file data drains while
  // a transaction's metadata images stay in the cache until the record
  // has committed. This is also the barrier primitive: the journal and
  // the dual-header protocol follow it with ONE device Sync(), instead
  // of paying Flush's fdatasync and then Sync's again. Held-back entries
  // keep their dirty flag.
  Status WriteBackDirty(const std::unordered_set<uint64_t>* hold_back =
                            nullptr);

  // Journal checkpoint primitive: writes `data` (block_size() bytes)
  // straight to the device under the block's shard lock — the same lock
  // every write-back path holds across ITS device write, which makes this
  // atomic against concurrent flushers without parking the block. The
  // cached entry is then reconciled: bytes identical -> dirty cleared
  // (the device now holds them); bytes differ -> the entry is STRICTLY
  // NEWER (every metadata writer snapshots monotone in-memory state, and
  // anything older was cleaned by the committing transaction's own
  // ordered flush) and keeps its dirty flag; absent -> nothing is
  // inserted. Unlike a Write() this can never regress the cache or the
  // device to an older image, which is what lets group commit checkpoint
  // bitmap/inode images while other sessions keep mutating them.
  Status CheckpointBlock(uint64_t block, const uint8_t* data);

  // Parks a set of blocks: EVERY write-back path — Flush, FlushExcept,
  // WriteBackDirty, eviction victims — skips them until unparked
  // (nullptr). This is how a journal transaction's held-back metadata
  // images survive CONCURRENT flushers (another session's hidden commit
  // barrier, PlainFs::Flush): the hold_back argument only protects the
  // journal's own calls, parking protects against everyone else's. The
  // journal parks for the window between its ordered-data flush and its
  // commit barrier, then unparks before checkpointing.
  void ParkBlocks(std::shared_ptr<const std::unordered_set<uint64_t>> blocks);
  // Dirty-epoch tracking: each write-back pass opens a new epoch; the
  // counter together with dirty_count() makes writeback progress
  // observable (steg_stats exposes both).
  uint64_t dirty_epoch() const {
    return dirty_epoch_.load(std::memory_order_relaxed);
  }
  // Dirty blocks currently parked in the cache (all shards).
  size_t dirty_count() const;
  // Discards every cached block (dirty contents are LOST — recovery paths
  // use this after rewriting the device underneath the cache).
  void DropAll();

  CacheStats stats() const;                    // lock-free snapshot
  double hit_rate() const { return stats().HitRate(); }
  // Registers this cache's instruments with `reg` under stegfs_cache_*
  // names. The cache keeps ownership; it must outlive the registry's
  // scrapes (PlainFs registers at mount, where destruction order
  // guarantees it).
  void RegisterMetrics(obs::MetricsRegistry* reg) const;
  // Miss-fill device latency (sync vectored fills and async
  // submit-to-completion), exposed for the demand-fill percentiles.
  const obs::Histogram& fill_histogram() const { return fill_ns_; }
  size_t size() const;                         // cached blocks, all shards
  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    uint64_t block;
    std::vector<uint8_t> data;
    bool dirty = false;
    // Inserted by the prefetcher and not yet claimed by a demand access.
    bool prefetched = false;
    // Shard write sequence of the last write that set these bytes (0 for
    // read-inserted entries). Async write completions use it to decide
    // whether their bytes are newer than the entry's.
    uint64_t wseq = 0;
  };
  using EntryList = std::list<Entry>;

  // One LRU domain; guarded by the same-index stripe of `locks_`.
  struct Shard {
    size_t capacity = 1;
    EntryList lru;  // front = most recently used
    std::unordered_map<uint64_t, EntryList::iterator> map;
    // Bumped (under the stripe) by anything that begins changing this
    // shard's device bytes: entry writes, async write SUBMISSIONS,
    // write-through invalidations, DropAll. Async READ completions
    // compare it against their submission-time snapshot and skip their
    // inserts on mismatch — that is what makes inserting device bytes
    // read OUTSIDE the shard lock safe.
    uint64_t gen = 0;
    // Monotonic ordering of writes in this shard. Every sync write group
    // and every async write submission claims the next value; entries
    // record their writer's value in Entry::wseq, so an async write
    // completion can tell "a newer write superseded me, keep the entry"
    // from "my bytes are the newest, replay them" — per BLOCK, which is
    // what lets a pipeline's sibling sub-batches (disjoint blocks, same
    // shard) all cache their groups instead of invalidating each other.
    uint64_t write_seq = 0;
    // Blocks with an async write in flight -> that write's sequence
    // (latest submission wins; erased at completion). An absent entry is
    // insert-safe for a completing write only while its claim is still
    // the block's latest.
    std::unordered_map<uint64_t, uint64_t> pending_writes;
  };

  static size_t AutoShardCount(size_t capacity_blocks);

  size_t ShardOf(uint64_t block) const { return locks_.StripeOf(block); }

  // All helpers below run with the shard's stripe held exclusively.
  Entry& Touch(Shard* shard, EntryList::iterator it);
  Status EnsureRoom(Shard* shard);
  Status FlushShard(Shard* shard,
                    const std::unordered_set<uint64_t>* hold_back = nullptr);
  // Counts a demand hit on `e`, claiming its prefetched flag if set.
  void CountHit(Entry& e);
  // Marks `e` dirty under the write policy.
  void MarkWritten(Entry* e) {
    e->dirty = (policy_ == WritePolicy::kWriteBack);
  }
  // Loads the listed blocks into one shard (missing ones only) with a
  // single vectored device read. Used by the pool-based prefetcher.
  void PopulateShard(size_t idx, const std::vector<uint64_t>& blocks);

  // Completion handlers of the async paths (run on engine threads; take
  // the shard stripe, never hold it across device I/O except dirty-victim
  // write-back, same as the sync path).
  void CompleteAsyncRead(size_t idx, const std::vector<BlockIoVec>& misses,
                         uint64_t gen, bool prefetch);
  void CompleteAsyncWrite(size_t idx, const std::vector<size_t>& positions,
                          const uint64_t* blocks, const uint8_t* data,
                          uint64_t seq, const Status& status);

  // Request positions grouped per shard, in request order (index into the
  // caller's blocks array). Shards with no requests are empty.
  std::vector<std::vector<size_t>> GroupByShard(const uint64_t* blocks,
                                                size_t n) const;

  // Snapshot of the parked set (see ParkBlocks); null when nothing is
  // parked. Guarded by parked_mu_; write-back paths take a shared_ptr
  // snapshot so the owner can unpark without racing them.
  std::shared_ptr<const std::unordered_set<uint64_t>> ParkedSnapshot() const {
    std::lock_guard<std::mutex> lock(parked_mu_);
    return parked_;
  }

  BlockDevice* device_;
  size_t capacity_;
  WritePolicy policy_;
  mutable std::mutex parked_mu_;
  std::shared_ptr<const std::unordered_set<uint64_t>> parked_;
  concurrency::StripedSharedMutex locks_;
  std::vector<Shard> shards_;
  std::atomic<concurrency::ThreadPool*> prefetch_pool_{nullptr};
  std::atomic<AsyncBlockDevice*> async_engine_{nullptr};

  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter writebacks_;
  obs::Counter batched_reads_;
  obs::Counter batched_writes_;
  obs::Counter prefetched_;
  obs::Counter prefetch_hits_;
  obs::Counter async_batched_reads_;
  obs::Counter async_batched_writes_;
  obs::Histogram fill_ns_;
  std::atomic<uint64_t> dirty_epoch_{1};
};

}  // namespace stegfs

#endif  // STEGFS_CACHE_BUFFER_CACHE_H_
