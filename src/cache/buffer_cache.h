// BufferCache: an LRU block cache between the file-system drivers and the
// block device — the user-space stand-in for the Linux buffer cache layer in
// the paper's figure 5 architecture.
//
// Write policy is configurable:
//   kWriteBack    - dirty blocks written on eviction / Flush (default; what
//                   a kernel buffer cache does)
//   kWriteThrough - every Write goes straight to the device (used by the
//                   benchmarks so each logical operation's trace contains
//                   its own writes, making interleaved replay attribution
//                   exact)
#ifndef STEGFS_CACHE_BUFFER_CACHE_H_
#define STEGFS_CACHE_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.h"
#include "util/status.h"

namespace stegfs {

enum class WritePolicy { kWriteBack, kWriteThrough };

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class BufferCache {
 public:
  // `device` must outlive the cache. capacity_blocks >= 1.
  BufferCache(BlockDevice* device, size_t capacity_blocks,
              WritePolicy policy = WritePolicy::kWriteBack);
  ~BufferCache();

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  uint32_t block_size() const { return device_->block_size(); }
  uint64_t num_blocks() const { return device_->num_blocks(); }

  // Reads a whole block through the cache. `out` holds block_size() bytes.
  Status Read(uint64_t block, uint8_t* out);
  // Writes a whole block through the cache.
  Status Write(uint64_t block, const uint8_t* data);

  // Writes back all dirty blocks and flushes the device.
  Status Flush();
  // Discards every cached block (dirty contents are LOST — recovery paths
  // use this after rewriting the device underneath the cache).
  void DropAll();

  const CacheStats& stats() const { return stats_; }
  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t block;
    std::vector<uint8_t> data;
    bool dirty = false;
  };
  using EntryList = std::list<Entry>;

  // Moves `it` to MRU position and returns the (stable) entry reference.
  Entry& Touch(EntryList::iterator it);
  // Evicts LRU entries until there is room for one more.
  Status EnsureRoom();

  BlockDevice* device_;
  size_t capacity_;
  WritePolicy policy_;
  EntryList lru_;  // front = most recently used
  std::unordered_map<uint64_t, EntryList::iterator> map_;
  CacheStats stats_;
};

}  // namespace stegfs

#endif  // STEGFS_CACHE_BUFFER_CACHE_H_
