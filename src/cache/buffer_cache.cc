#include "cache/buffer_cache.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>

namespace stegfs {

size_t BufferCache::AutoShardCount(size_t capacity_blocks) {
  return std::max<size_t>(1, std::min<size_t>(16, capacity_blocks / 64));
}

BufferCache::BufferCache(BlockDevice* device, size_t capacity_blocks,
                         WritePolicy policy, size_t shard_count)
    : device_(device),
      capacity_(capacity_blocks),
      policy_(policy),
      locks_(shard_count == 0 ? AutoShardCount(capacity_blocks)
                              : shard_count),
      shards_(locks_.stripe_count()) {
  assert(capacity_ >= 1);
  // Split the capacity across shards; early shards take the remainder so
  // every shard holds at least one block.
  size_t base = capacity_ / shards_.size();
  size_t extra = capacity_ % shards_.size();
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].capacity = std::max<size_t>(1, base + (i < extra ? 1 : 0));
  }
}

BufferCache::~BufferCache() {
  // Best-effort writeback; errors cannot be reported from a destructor, so
  // correctness-sensitive callers must Flush() explicitly first.
  (void)Flush();
}

BufferCache::Entry& BufferCache::Touch(Shard* shard, EntryList::iterator it) {
  shard->lru.splice(shard->lru.begin(), shard->lru, it);
  return *shard->lru.begin();
}

Status BufferCache::EnsureRoom(Shard* shard) {
  while (shard->map.size() >= shard->capacity) {
    Entry& victim = shard->lru.back();
    if (victim.dirty) {
      STEGFS_RETURN_IF_ERROR(
          device_->WriteBlock(victim.block, victim.data.data()));
      writebacks_.fetch_add(1, std::memory_order_relaxed);
    }
    shard->map.erase(victim.block);
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status BufferCache::Read(uint64_t block, uint8_t* out) {
  size_t idx = locks_.StripeOf(block);
  Shard* shard = &shards_[idx];
  std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));
  auto found = shard->map.find(block);
  if (found != shard->map.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Entry& e = Touch(shard, found->second);
    std::memcpy(out, e.data.data(), e.data.size());
    return Status::OK();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  STEGFS_RETURN_IF_ERROR(EnsureRoom(shard));
  Entry e;
  e.block = block;
  e.data.resize(device_->block_size());
  STEGFS_RETURN_IF_ERROR(device_->ReadBlock(block, e.data.data()));
  std::memcpy(out, e.data.data(), e.data.size());
  shard->lru.push_front(std::move(e));
  shard->map[block] = shard->lru.begin();
  return Status::OK();
}

Status BufferCache::Write(uint64_t block, const uint8_t* data) {
  size_t idx = locks_.StripeOf(block);
  Shard* shard = &shards_[idx];
  std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));
  if (policy_ == WritePolicy::kWriteThrough) {
    STEGFS_RETURN_IF_ERROR(device_->WriteBlock(block, data));
  }
  auto found = shard->map.find(block);
  if (found != shard->map.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Entry& e = Touch(shard, found->second);
    std::memcpy(e.data.data(), data, e.data.size());
    e.dirty = (policy_ == WritePolicy::kWriteBack);
    return Status::OK();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  STEGFS_RETURN_IF_ERROR(EnsureRoom(shard));
  Entry e;
  e.block = block;
  e.data.assign(data, data + device_->block_size());
  e.dirty = (policy_ == WritePolicy::kWriteBack);
  shard->lru.push_front(std::move(e));
  shard->map[block] = shard->lru.begin();
  return Status::OK();
}

Status BufferCache::FlushShard(Shard* shard) {
  for (Entry& e : shard->lru) {
    if (e.dirty) {
      STEGFS_RETURN_IF_ERROR(device_->WriteBlock(e.block, e.data.data()));
      e.dirty = false;
      writebacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status BufferCache::Flush() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::shared_mutex> lock(locks_.stripe(i));
    STEGFS_RETURN_IF_ERROR(FlushShard(&shards_[i]));
  }
  return device_->Flush();
}

void BufferCache::DropAll() {
  concurrency::StripedSharedMutex::ExclusiveAllGuard all(&locks_);
  for (Shard& shard : shards_) {
    shard.lru.clear();
    shard.map.clear();
  }
}

CacheStats BufferCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.writebacks = writebacks_.load(std::memory_order_relaxed);
  return s;
}

size_t BufferCache::size() const {
  size_t total = 0;
  auto* self = const_cast<BufferCache*>(this);
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::shared_mutex> lock(self->locks_.stripe(i));
    total += shards_[i].map.size();
  }
  return total;
}

}  // namespace stegfs
