#include "cache/buffer_cache.h"

#include <cassert>
#include <cstring>

namespace stegfs {

BufferCache::BufferCache(BlockDevice* device, size_t capacity_blocks,
                         WritePolicy policy)
    : device_(device), capacity_(capacity_blocks), policy_(policy) {
  assert(capacity_ >= 1);
}

BufferCache::~BufferCache() {
  // Best-effort writeback; errors cannot be reported from a destructor, so
  // correctness-sensitive callers must Flush() explicitly first.
  (void)Flush();
}

BufferCache::Entry& BufferCache::Touch(EntryList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
  return *lru_.begin();
}

Status BufferCache::EnsureRoom() {
  while (map_.size() >= capacity_) {
    Entry& victim = lru_.back();
    if (victim.dirty) {
      STEGFS_RETURN_IF_ERROR(
          device_->WriteBlock(victim.block, victim.data.data()));
      stats_.writebacks++;
    }
    map_.erase(victim.block);
    lru_.pop_back();
    stats_.evictions++;
  }
  return Status::OK();
}

Status BufferCache::Read(uint64_t block, uint8_t* out) {
  auto found = map_.find(block);
  if (found != map_.end()) {
    stats_.hits++;
    Entry& e = Touch(found->second);
    std::memcpy(out, e.data.data(), e.data.size());
    return Status::OK();
  }
  stats_.misses++;
  STEGFS_RETURN_IF_ERROR(EnsureRoom());
  Entry e;
  e.block = block;
  e.data.resize(device_->block_size());
  STEGFS_RETURN_IF_ERROR(device_->ReadBlock(block, e.data.data()));
  std::memcpy(out, e.data.data(), e.data.size());
  lru_.push_front(std::move(e));
  map_[block] = lru_.begin();
  return Status::OK();
}

Status BufferCache::Write(uint64_t block, const uint8_t* data) {
  if (policy_ == WritePolicy::kWriteThrough) {
    STEGFS_RETURN_IF_ERROR(device_->WriteBlock(block, data));
  }
  auto found = map_.find(block);
  if (found != map_.end()) {
    stats_.hits++;
    Entry& e = Touch(found->second);
    std::memcpy(e.data.data(), data, e.data.size());
    e.dirty = (policy_ == WritePolicy::kWriteBack);
    return Status::OK();
  }
  stats_.misses++;
  STEGFS_RETURN_IF_ERROR(EnsureRoom());
  Entry e;
  e.block = block;
  e.data.assign(data, data + device_->block_size());
  e.dirty = (policy_ == WritePolicy::kWriteBack);
  lru_.push_front(std::move(e));
  map_[block] = lru_.begin();
  return Status::OK();
}

Status BufferCache::Flush() {
  for (Entry& e : lru_) {
    if (e.dirty) {
      STEGFS_RETURN_IF_ERROR(device_->WriteBlock(e.block, e.data.data()));
      e.dirty = false;
      stats_.writebacks++;
    }
  }
  return device_->Flush();
}

void BufferCache::DropAll() {
  lru_.clear();
  map_.clear();
}

}  // namespace stegfs
