#include "cache/buffer_cache.h"

#include "obs/trace.h"

#include <algorithm>
#include <cstdint>
#include <cassert>
#include <cstring>
#include <mutex>
#include <unordered_set>
#include <utility>

namespace stegfs {

size_t BufferCache::AutoShardCount(size_t capacity_blocks) {
  return std::max<size_t>(1, std::min<size_t>(16, capacity_blocks / 64));
}

BufferCache::BufferCache(BlockDevice* device, size_t capacity_blocks,
                         WritePolicy policy, size_t shard_count)
    : device_(device),
      capacity_(capacity_blocks),
      policy_(policy),
      locks_(shard_count == 0 ? AutoShardCount(capacity_blocks)
                              : shard_count),
      shards_(locks_.stripe_count()) {
  assert(capacity_ >= 1);
  // Split the capacity across shards; early shards take the remainder so
  // every shard holds at least one block.
  size_t base = capacity_ / shards_.size();
  size_t extra = capacity_ % shards_.size();
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].capacity = std::max<size_t>(1, base + (i < extra ? 1 : 0));
  }
}

BufferCache::~BufferCache() {
  // Best-effort writeback; errors cannot be reported from a destructor, so
  // correctness-sensitive callers must Flush() explicitly first.
  (void)Flush();
}

BufferCache::Entry& BufferCache::Touch(Shard* shard, EntryList::iterator it) {
  shard->lru.splice(shard->lru.begin(), shard->lru, it);
  return *shard->lru.begin();
}

Status BufferCache::EnsureRoom(Shard* shard) {
  auto parked = ParkedSnapshot();
  while (shard->map.size() >= shard->capacity) {
    auto victim_it = std::prev(shard->lru.end());
    if (parked != nullptr) {
      // Never write a parked dirty block early (it is a journal txn's
      // held-back image): walk up the LRU for an unparked victim. The
      // parked set is a handful of blocks, caches are far larger, so a
      // fallback to the true LRU victim is effectively unreachable —
      // but memory correctness wins over write ordering if it happens.
      auto it = victim_it;
      while (it->dirty && parked->count(it->block) != 0) {
        if (it == shard->lru.begin()) {
          it = victim_it;
          break;
        }
        --it;
      }
      victim_it = it;
    }
    Entry& victim = *victim_it;
    if (victim.dirty) {
      STEGFS_RETURN_IF_ERROR(
          device_->WriteBlock(victim.block, victim.data.data()));
      writebacks_.Increment();
    }
    shard->map.erase(victim.block);
    shard->lru.erase(victim_it);
    evictions_.Increment();
  }
  return Status::OK();
}

void BufferCache::CountHit(Entry& e) {
  hits_.Increment();
  if (e.prefetched) {
    e.prefetched = false;
    prefetch_hits_.Increment();
  }
}

Status BufferCache::Read(uint64_t block, uint8_t* out) {
  size_t idx = ShardOf(block);
  Shard* shard = &shards_[idx];
  std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));
  auto found = shard->map.find(block);
  if (found != shard->map.end()) {
    Entry& e = Touch(shard, found->second);
    CountHit(e);
    std::memcpy(out, e.data.data(), e.data.size());
    return Status::OK();
  }
  misses_.Increment();
  STEGFS_RETURN_IF_ERROR(EnsureRoom(shard));
  Entry e;
  e.block = block;
  e.data.resize(device_->block_size());
  {
    obs::LatencyTimer fill_timer(&fill_ns_);
    STEGFS_RETURN_IF_ERROR(device_->ReadBlock(block, e.data.data()));
  }
  std::memcpy(out, e.data.data(), e.data.size());
  shard->lru.push_front(std::move(e));
  shard->map[block] = shard->lru.begin();
  return Status::OK();
}

Status BufferCache::Write(uint64_t block, const uint8_t* data) {
  size_t idx = ShardOf(block);
  Shard* shard = &shards_[idx];
  std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));
  shard->gen++;  // invalidates in-flight async reads' snapshots
  const uint64_t seq = ++shard->write_seq;
  if (policy_ == WritePolicy::kWriteThrough) {
    STEGFS_RETURN_IF_ERROR(device_->WriteBlock(block, data));
  }
  auto found = shard->map.find(block);
  if (found != shard->map.end()) {
    Entry& e = Touch(shard, found->second);
    CountHit(e);
    std::memcpy(e.data.data(), data, e.data.size());
    MarkWritten(&e);
    e.wseq = seq;
    return Status::OK();
  }
  misses_.Increment();
  STEGFS_RETURN_IF_ERROR(EnsureRoom(shard));
  Entry e;
  e.block = block;
  e.data.assign(data, data + device_->block_size());
  MarkWritten(&e);
  e.wseq = seq;
  shard->lru.push_front(std::move(e));
  shard->map[block] = shard->lru.begin();
  return Status::OK();
}

std::vector<std::vector<size_t>> BufferCache::GroupByShard(
    const uint64_t* blocks, size_t n) const {
  std::vector<std::vector<size_t>> groups(shards_.size());
  if (shards_.size() == 1) {
    groups[0].resize(n);
    for (size_t i = 0; i < n; ++i) groups[0][i] = i;
    return groups;
  }
  for (size_t i = 0; i < n; ++i) {
    groups[ShardOf(blocks[i])].push_back(i);
  }
  return groups;
}

Status BufferCache::ReadBatch(const uint64_t* blocks, size_t n,
                              uint8_t* out) {
  const size_t bs = device_->block_size();
  batched_reads_.Add(n);

  // One shard at a time, holding only that shard's lock — exactly the
  // demand path's locking granularity, so concurrent sessions on other
  // shards never stall behind this batch's device I/O. On a one-shard
  // cache the whole extent's misses leave as a single coalescable
  // vectored call (see the sharding-vs-coalescing note in the header).
  auto groups = GroupByShard(blocks, n);
  std::vector<size_t> miss_pos;
  std::vector<std::pair<size_t, size_t>> dup_of;
  std::vector<BlockIoVec> iov;
  for (size_t idx = 0; idx < groups.size(); ++idx) {
    const std::vector<size_t>& group = groups[idx];
    if (group.empty()) continue;
    Shard* shard = &shards_[idx];
    std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));

    // Pass 1: copy hits out; collect the distinct misses (request order)
    // and read them from the device straight into `out` with one vectored
    // call, under the shard lock (that is what makes a concurrent miss on
    // the same block read the device exactly once).
    miss_pos.clear();
    dup_of.clear();
    iov.clear();
    for (size_t pos : group) {
      auto found = shard->map.find(blocks[pos]);
      if (found != shard->map.end()) {
        std::memcpy(out + pos * bs, found->second->data.data(), bs);
        continue;
      }
      size_t first = SIZE_MAX;
      for (size_t prev : miss_pos) {
        if (blocks[prev] == blocks[pos]) {
          first = prev;
          break;
        }
      }
      if (first == SIZE_MAX) {
        miss_pos.push_back(pos);
        iov.push_back({blocks[pos], out + pos * bs});
      } else {
        dup_of.push_back({pos, first});  // filled after the device read
      }
    }
    if (!iov.empty()) {
      obs::LatencyTimer fill_timer(&fill_ns_);
      STEGFS_RETURN_IF_ERROR(device_->ReadBlocks(iov.data(), iov.size()));
    }
    for (const auto& [pos, first] : dup_of) {
      std::memcpy(out + pos * bs, out + first * bs, bs);
    }

    // Pass 2: replay the per-block algorithm in request order — identical
    // hit/miss counts, LRU updates and eviction sequence to a Read loop.
    // (A pass-1 hit evicted by an earlier insert in this same pass is
    // re-inserted from the bytes copied in pass 1 and still counts as a
    // hit; this can only happen when one batch touches more distinct
    // blocks than the shard holds.)
    for (size_t pos : group) {
      auto found = shard->map.find(blocks[pos]);
      if (found != shard->map.end()) {
        Entry& e = Touch(shard, found->second);
        CountHit(e);
        std::memcpy(out + pos * bs, e.data.data(), bs);
        continue;
      }
      bool fetched = false;
      for (size_t mp : miss_pos) {
        if (blocks[mp] == blocks[pos]) {
          fetched = true;
          break;
        }
      }
      if (fetched) {
        misses_.Increment();
      } else {
        hits_.Increment();  // evicted pass-1 hit
      }
      STEGFS_RETURN_IF_ERROR(EnsureRoom(shard));
      Entry e;
      e.block = blocks[pos];
      e.data.assign(out + pos * bs, out + pos * bs + bs);
      shard->lru.push_front(std::move(e));
      shard->map[blocks[pos]] = shard->lru.begin();
    }
  }
  return Status::OK();
}

Status BufferCache::WriteBatch(const uint64_t* blocks, size_t n,
                               const uint8_t* data) {
  const size_t bs = device_->block_size();
  batched_writes_.Add(n);
  auto groups = GroupByShard(blocks, n);
  std::vector<ConstBlockIoVec> iov;
  for (size_t idx = 0; idx < groups.size(); ++idx) {
    const std::vector<size_t>& group = groups[idx];
    if (group.empty()) continue;
    Shard* shard = &shards_[idx];
    std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));
    shard->gen++;  // invalidates in-flight async reads' snapshots
    const uint64_t seq = ++shard->write_seq;

    if (policy_ == WritePolicy::kWriteThrough) {
      // One vectored device call per shard group, in request order (a
      // duplicate block writes twice, last value winning — same as the
      // per-block loop).
      iov.clear();
      iov.reserve(group.size());
      for (size_t pos : group) iov.push_back({blocks[pos], data + pos * bs});
      Status ws = device_->WriteBlocks(iov.data(), iov.size());
      if (!ws.ok()) {
        // The device may have persisted a prefix of the group; drop the
        // group's cached entries (never dirty under write-through) so the
        // cache cannot serve bytes older than what reached the device.
        for (size_t pos : group) {
          auto found = shard->map.find(blocks[pos]);
          if (found != shard->map.end()) {
            shard->lru.erase(found->second);
            shard->map.erase(found);
          }
        }
        return ws;
      }
    }

    for (size_t pos : group) {
      auto found = shard->map.find(blocks[pos]);
      if (found != shard->map.end()) {
        Entry& e = Touch(shard, found->second);
        CountHit(e);
        std::memcpy(e.data.data(), data + pos * bs, bs);
        MarkWritten(&e);
        e.wseq = seq;
        continue;
      }
      misses_.Increment();
      STEGFS_RETURN_IF_ERROR(EnsureRoom(shard));
      Entry e;
      e.block = blocks[pos];
      e.data.assign(data + pos * bs, data + pos * bs + bs);
      MarkWritten(&e);
      e.wseq = seq;
      shard->lru.push_front(std::move(e));
      shard->map[blocks[pos]] = shard->lru.begin();
    }
  }
  return Status::OK();
}

void BufferCache::SetAsyncEngine(AsyncBlockDevice* engine) {
  async_engine_.store(engine, std::memory_order_release);
}

CacheIoTicket BufferCache::ReadBatchAsync(const uint64_t* blocks, size_t n,
                                          uint8_t* out) {
  CacheIoTicket result;
  AsyncBlockDevice* engine = async_engine();
  if (engine == nullptr || n == 0) {
    result.base_ = ReadBatch(blocks, n, out);
    return result;
  }
  const size_t bs = device_->block_size();
  batched_reads_.Add(n);
  async_batched_reads_.Add(n);

  auto groups = GroupByShard(blocks, n);
  std::unordered_map<uint64_t, size_t> first_pos;  // block -> first miss pos
  for (size_t idx = 0; idx < groups.size(); ++idx) {
    const std::vector<size_t>& group = groups[idx];
    if (group.empty()) continue;
    Shard* shard = &shards_[idx];
    std::vector<BlockIoVec> iov;
    std::vector<std::pair<size_t, size_t>> dups;
    uint64_t gen;
    first_pos.clear();
    {
      // Pass 1 only: hits copy out, misses are collected. Unlike the sync
      // path the lock does NOT cover the device read — that is the whole
      // point — so the insert is deferred to the completion handler and
      // generation-guarded there.
      std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));
      gen = shard->gen;
      for (size_t pos : group) {
        auto found = shard->map.find(blocks[pos]);
        if (found != shard->map.end()) {
          Entry& e = Touch(shard, found->second);
          CountHit(e);
          std::memcpy(out + pos * bs, e.data.data(), bs);
          continue;
        }
        auto [it, fresh] = first_pos.try_emplace(blocks[pos], pos);
        if (fresh) {
          misses_.Increment();
          iov.push_back({blocks[pos], out + pos * bs});
        } else {
          // Sync-replay parity: the first occurrence is the miss, later
          // duplicates find the freshly inserted entry and count as hits.
          hits_.Increment();
          dups.push_back({pos, it->second});
        }
      }
    }
    if (iov.empty()) continue;
    // Lease a span from the engine's pinned read pool when one fits: the
    // transfer then goes through READ_FIXED (no per-op page pin) and is
    // copied out to the caller at completion. A null lease (no pool, pool
    // exhausted, group too large) submits straight into caller buffers —
    // the pool is purely an optimization, never a requirement.
    uint8_t* lease = engine->AcquireReadSpan(iov.size());
    std::vector<BlockIoVec> engine_iov;
    engine_iov.reserve(iov.size());
    for (size_t k = 0; k < iov.size(); ++k) {
      engine_iov.push_back(
          {iov[k].block, lease != nullptr ? lease + k * bs : iov[k].buf});
    }
    // Submission-time capture: fill latency spans submit→completion, and
    // the caller's trace context rides along so the completion (an engine
    // thread) lands in the submitting operation's span tree.
    const uint64_t fill_t0 = obs::MetricsEnabled() ? obs::NowNanos() : 0;
    const obs::SpanContext span_ctx = obs::CurrentSpanContext();
    result.tickets_.push_back(engine->SubmitRead(
        std::move(engine_iov),
        [this, engine, lease, idx, iov = std::move(iov),
         dups = std::move(dups), gen, out, bs, fill_t0,
         span_ctx](const Status& s) {
          obs::Span span(span_ctx, "cache.fill", "cache");
          if (fill_t0 != 0) fill_ns_.Record(obs::NowNanos() - fill_t0);
          if (lease != nullptr) {
            if (s.ok()) {
              for (size_t k = 0; k < iov.size(); ++k) {
                std::memcpy(iov[k].buf, lease + k * bs, bs);
              }
            }
            engine->ReleaseReadSpan(lease);  // always, even on error
          }
          if (!s.ok()) return;  // nothing inserted; Wait() reports the error
          for (const auto& [pos, first] : dups) {
            std::memcpy(out + pos * bs, out + first * bs, bs);
          }
          CompleteAsyncRead(idx, iov, gen, /*prefetch=*/false);
        }));
  }
  return result;
}

void BufferCache::CompleteAsyncRead(size_t idx,
                                    const std::vector<BlockIoVec>& misses,
                                    uint64_t gen, bool prefetch) {
  const size_t bs = device_->block_size();
  Shard* shard = &shards_[idx];
  std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));
  if (shard->gen != gen) {
    // A write or invalidation touched this shard while the read was in
    // flight: the fetched bytes may be older than the device, so they go
    // to the caller (a legal linearization — the read began first) but
    // never into the cache.
    return;
  }
  for (const BlockIoVec& v : misses) {
    if (shard->map.find(v.block) != shard->map.end()) {
      continue;  // a racing demand read inserted it first
    }
    if (!EnsureRoom(shard).ok()) return;  // victim write-back failed
    Entry e;
    e.block = v.block;
    e.data.assign(v.buf, v.buf + bs);
    e.prefetched = prefetch;
    shard->lru.push_front(std::move(e));
    shard->map[v.block] = shard->lru.begin();
    if (prefetch) prefetched_.Increment();
  }
}

CacheIoTicket BufferCache::WriteBatchAsync(const uint64_t* blocks, size_t n,
                                           const uint8_t* data) {
  CacheIoTicket result;
  AsyncBlockDevice* engine = async_engine();
  // Write-back never touches the device here, and duplicate blocks need
  // the sync path's ordering (async batches are unordered).
  bool sync_fallback =
      engine == nullptr || n == 0 || policy_ != WritePolicy::kWriteThrough;
  if (!sync_fallback) {
    std::unordered_set<uint64_t> seen;
    for (size_t i = 0; i < n && !sync_fallback; ++i) {
      sync_fallback = !seen.insert(blocks[i]).second;
    }
  }
  if (sync_fallback) {
    result.base_ = WriteBatch(blocks, n, data);
    return result;
  }
  const size_t bs = device_->block_size();
  batched_writes_.Add(n);
  async_batched_writes_.Add(n);

  auto groups = GroupByShard(blocks, n);
  for (size_t idx = 0; idx < groups.size(); ++idx) {
    const std::vector<size_t>& group = groups[idx];
    if (group.empty()) continue;
    uint64_t seq;
    {
      // The device mutation begins now: claim the shard's next write
      // sequence (per block, so later writers supersede us per block, not
      // per shard) and invalidate in-flight read snapshots.
      std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));
      Shard* shard = &shards_[idx];
      shard->gen++;
      seq = ++shard->write_seq;
      for (size_t pos : group) shard->pending_writes[blocks[pos]] = seq;
    }
    std::vector<ConstBlockIoVec> iov;
    iov.reserve(group.size());
    for (size_t pos : group) iov.push_back({blocks[pos], data + pos * bs});
    std::vector<size_t> positions = group;
    const obs::SpanContext span_ctx = obs::CurrentSpanContext();
    result.tickets_.push_back(engine->SubmitWrite(
        std::move(iov),
        [this, idx, positions = std::move(positions), blocks, data, seq,
         span_ctx](const Status& s) {
          obs::Span span(span_ctx, "cache.write_complete", "cache");
          CompleteAsyncWrite(idx, positions, blocks, data, seq, s);
        }));
  }
  return result;
}

void BufferCache::CompleteAsyncWrite(size_t idx,
                                     const std::vector<size_t>& positions,
                                     const uint64_t* blocks,
                                     const uint8_t* data, uint64_t seq,
                                     const Status& status) {
  const size_t bs = device_->block_size();
  Shard* shard = &shards_[idx];
  std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));
  if (!status.ok()) {
    // Mid-batch device error: an unknown prefix landed, so drop exactly
    // this group's entries — the cache then re-reads the device's
    // authoritative bytes. Never dirty under write-through, so dropping
    // loses nothing.
    for (size_t pos : positions) {
      auto claim = shard->pending_writes.find(blocks[pos]);
      if (claim != shard->pending_writes.end() && claim->second == seq) {
        shard->pending_writes.erase(claim);
      }
      auto found = shard->map.find(blocks[pos]);
      if (found != shard->map.end()) {
        shard->lru.erase(found->second);
        shard->map.erase(found);
      }
    }
    return;
  }
  // Replay the entry updates per block: keep anything a NEWER write set
  // (its bytes supersede ours in the device too, for serialized
  // writers), take ours otherwise. This per-block ordering is what lets
  // a pipeline's sibling sub-batches — disjoint blocks, same shard —
  // each cache their own group.
  for (size_t pos : positions) {
    auto claim = shard->pending_writes.find(blocks[pos]);
    const bool latest_claim =
        claim != shard->pending_writes.end() && claim->second == seq;
    if (latest_claim) shard->pending_writes.erase(claim);
    auto found = shard->map.find(blocks[pos]);
    if (found != shard->map.end()) {
      if (found->second->wseq > seq) continue;  // superseded: keep newer
      Entry& e = Touch(shard, found->second);
      CountHit(e);
      std::memcpy(e.data.data(), data + pos * bs, bs);
      e.dirty = false;
      e.wseq = seq;
      continue;
    }
    // No entry: safe to insert only while our claim is still the
    // block's latest (a later in-flight async write, or a DropAll that
    // cleared the claims, means our bytes may not be what the device
    // will hold).
    if (!latest_claim) continue;
    misses_.Increment();
    if (!EnsureRoom(shard).ok()) return;
    Entry e;
    e.block = blocks[pos];
    e.data.assign(data + pos * bs, data + pos * bs + bs);
    e.wseq = seq;
    shard->lru.push_front(std::move(e));
    shard->map[e.block] = shard->lru.begin();
  }
}

Status BufferCache::CheckpointBlock(uint64_t block, const uint8_t* data) {
  const size_t bs = device_->block_size();
  size_t idx = ShardOf(block);
  Shard* shard = &shards_[idx];
  std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));
  // The device bytes change under the lock: invalidate in-flight async
  // read snapshots so they cannot insert the pre-checkpoint bytes.
  shard->gen++;
  STEGFS_RETURN_IF_ERROR(device_->WriteBlock(block, data));
  writebacks_.Increment();
  auto found = shard->map.find(block);
  if (found != shard->map.end() && found->second->dirty &&
      std::memcmp(found->second->data.data(), data, bs) == 0) {
    found->second->dirty = false;
  }
  return Status::OK();
}

void BufferCache::SetPrefetchPool(concurrency::ThreadPool* pool) {
  prefetch_pool_.store(pool, std::memory_order_release);
}

void BufferCache::PopulateShard(size_t idx,
                                const std::vector<uint64_t>& blocks) {
  // Sub-batches of a few blocks, each fully under the shard lock (the
  // device read must stay inside the lock for the same reason the demand
  // path's does — an unlocked read could insert bytes staler than a
  // racing write), but releasing between sub-batches bounds how long a
  // demand access can stall behind background I/O.
  constexpr size_t kSubBatch = 8;
  const size_t bs = device_->block_size();
  Shard* shard = &shards_[idx];
  std::vector<uint8_t> buf(kSubBatch * bs);
  std::vector<BlockIoVec> iov;
  for (size_t start = 0; start < blocks.size(); start += kSubBatch) {
    const size_t end = std::min(blocks.size(), start + kSubBatch);
    std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));
    iov.clear();
    for (size_t i = start; i < end; ++i) {
      if (shard->map.find(blocks[i]) == shard->map.end()) {
        iov.push_back({blocks[i], buf.data() + iov.size() * bs});
      }
    }
    if (iov.empty()) continue;
    // Best-effort: a failed prefetch read just leaves the blocks uncached.
    if (!device_->ReadBlocks(iov.data(), iov.size()).ok()) return;
    for (size_t i = 0; i < iov.size(); ++i) {
      if (!EnsureRoom(shard).ok()) return;
      Entry e;
      e.block = iov[i].block;
      e.data.assign(buf.data() + i * bs, buf.data() + (i + 1) * bs);
      e.prefetched = true;
      shard->lru.push_front(std::move(e));
      shard->map[e.block] = shard->lru.begin();
      prefetched_.Increment();
    }
  }
}

void BufferCache::Prefetch(const uint64_t* blocks, size_t n) {
  if (n == 0) return;
  std::vector<uint64_t> wanted;
  wanted.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (blocks[i] < device_->num_blocks()) wanted.push_back(blocks[i]);
  }
  if (wanted.empty()) return;

  AsyncBlockDevice* engine = async_engine();
  if (engine != nullptr) {
    // Pure submitter: the engine carries the I/O and its completion
    // handler does the insert, so no pool thread ever blocks on a
    // background read. Fire-and-forget: the dropped ticket is covered by
    // the engine's Drain/destructor, and a failed read just leaves the
    // blocks uncached.
    const size_t bs = device_->block_size();
    auto groups = GroupByShard(wanted.data(), wanted.size());
    for (size_t idx = 0; idx < groups.size(); ++idx) {
      if (groups[idx].empty()) continue;
      std::vector<uint64_t> need;
      uint64_t gen;
      {
        std::lock_guard<std::shared_mutex> lock(locks_.stripe(idx));
        gen = shards_[idx].gen;
        for (size_t pos : groups[idx]) {
          if (shards_[idx].map.find(wanted[pos]) == shards_[idx].map.end()) {
            need.push_back(wanted[pos]);
          }
        }
      }
      if (need.empty()) continue;
      auto buf = std::make_shared<std::vector<uint8_t>>(need.size() * bs);
      std::vector<BlockIoVec> iov(need.size());
      for (size_t i = 0; i < need.size(); ++i) {
        iov[i] = {need[i], buf->data() + i * bs};
      }
      std::vector<BlockIoVec> engine_iov = iov;
      engine->SubmitRead(std::move(engine_iov),
                         [this, idx, iov = std::move(iov), buf,
                          gen](const Status& s) {
                           if (!s.ok()) return;  // best-effort
                           CompleteAsyncRead(idx, iov, gen,
                                             /*prefetch=*/true);
                         });
    }
    return;
  }

  concurrency::ThreadPool* pool =
      prefetch_pool_.load(std::memory_order_acquire);
  if (pool == nullptr) return;
  pool->Submit([this, wanted = std::move(wanted)] {
    auto groups = GroupByShard(wanted.data(), wanted.size());
    for (size_t idx = 0; idx < groups.size(); ++idx) {
      if (groups[idx].empty()) continue;
      std::vector<uint64_t> shard_blocks;
      shard_blocks.reserve(groups[idx].size());
      for (size_t pos : groups[idx]) shard_blocks.push_back(wanted[pos]);
      PopulateShard(idx, shard_blocks);
    }
  });
}

Status BufferCache::FlushShard(Shard* shard,
                               const std::unordered_set<uint64_t>* hold_back) {
  // One vectored write-back per shard, ascending by LBA so contiguous
  // dirty extents coalesce on the device. On error every entry stays
  // dirty (re-written by the next flush — idempotent). Held-back blocks
  // (the journal's parked metadata images) are skipped entirely.
  auto parked = ParkedSnapshot();
  std::vector<Entry*> dirty;
  for (Entry& e : shard->lru) {
    if (!e.dirty) continue;
    if (hold_back != nullptr && hold_back->count(e.block) != 0) continue;
    if (parked != nullptr && parked->count(e.block) != 0) continue;
    dirty.push_back(&e);
  }
  if (dirty.empty()) return Status::OK();
  std::sort(dirty.begin(), dirty.end(),
            [](const Entry* a, const Entry* b) { return a->block < b->block; });
  std::vector<ConstBlockIoVec> iov;
  iov.reserve(dirty.size());
  for (const Entry* e : dirty) iov.push_back({e->block, e->data.data()});
  STEGFS_RETURN_IF_ERROR(device_->WriteBlocks(iov.data(), iov.size()));
  for (Entry* e : dirty) e->dirty = false;
  writebacks_.Add(dirty.size());
  return Status::OK();
}

void BufferCache::ParkBlocks(
    std::shared_ptr<const std::unordered_set<uint64_t>> blocks) {
  std::lock_guard<std::mutex> lock(parked_mu_);
  parked_ = std::move(blocks);
}

Status BufferCache::WriteBackDirty(
    const std::unordered_set<uint64_t>* hold_back) {
  dirty_epoch_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::shared_mutex> lock(locks_.stripe(i));
    STEGFS_RETURN_IF_ERROR(FlushShard(&shards_[i], hold_back));
  }
  return Status::OK();
}

Status BufferCache::Flush() {
  STEGFS_RETURN_IF_ERROR(WriteBackDirty());
  return device_->Flush();
}

size_t BufferCache::dirty_count() const {
  size_t n = 0;
  auto* self = const_cast<BufferCache*>(this);
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::shared_mutex> lock(self->locks_.stripe(i));
    for (const Entry& e : shards_[i].lru) {
      if (e.dirty) ++n;
    }
  }
  return n;
}

void BufferCache::DropAll() {
  concurrency::StripedSharedMutex::ExclusiveAllGuard all(&locks_);
  for (Shard& shard : shards_) {
    shard.lru.clear();
    shard.map.clear();
    // Callers drop the cache because the device was rewritten underneath
    // it; anything read OR written before the rewrite must not come back
    // (cleared claims make in-flight async write completions skip their
    // re-inserts too).
    shard.gen++;
    shard.pending_writes.clear();
  }
}

CacheStats BufferCache::stats() const {
  CacheStats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.evictions = evictions_.value();
  s.writebacks = writebacks_.value();
  s.batched_reads = batched_reads_.value();
  s.batched_writes = batched_writes_.value();
  s.prefetched = prefetched_.value();
  s.prefetch_hits = prefetch_hits_.value();
  s.async_batched_reads =
      async_batched_reads_.value();
  s.async_batched_writes =
      async_batched_writes_.value();
  return s;
}

void BufferCache::RegisterMetrics(obs::MetricsRegistry* reg) const {
  reg->RegisterCounter("stegfs_cache_hits_total", "Cache demand hits",
                       &hits_);
  reg->RegisterCounter("stegfs_cache_misses_total", "Cache demand misses",
                       &misses_);
  reg->RegisterCounter("stegfs_cache_evictions_total", "LRU evictions",
                       &evictions_);
  reg->RegisterCounter("stegfs_cache_writebacks_total",
                       "Dirty block write-backs", &writebacks_);
  reg->RegisterCounter("stegfs_cache_batched_reads_total",
                       "Blocks read through batch calls", &batched_reads_);
  reg->RegisterCounter("stegfs_cache_batched_writes_total",
                       "Blocks written through batch calls",
                       &batched_writes_);
  reg->RegisterCounter("stegfs_cache_prefetched_total",
                       "Blocks inserted by the prefetcher", &prefetched_);
  reg->RegisterCounter("stegfs_cache_prefetch_hits_total",
                       "Prefetched blocks claimed by demand reads",
                       &prefetch_hits_);
  reg->RegisterCounter("stegfs_cache_async_batched_reads_total",
                       "Blocks read through the async batch path",
                       &async_batched_reads_);
  reg->RegisterCounter("stegfs_cache_async_batched_writes_total",
                       "Blocks written through the async batch path",
                       &async_batched_writes_);
  reg->RegisterHistogram("stegfs_cache_fill_seconds",
                         "Demand miss fill latency (device read)",
                         &fill_ns_);
}

size_t BufferCache::size() const {
  size_t total = 0;
  auto* self = const_cast<BufferCache*>(this);
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::shared_mutex> lock(self->locks_.stripe(i));
    total += shards_[i].map.size();
  }
  return total;
}

}  // namespace stegfs
