// HealthMonitor: the mount's degraded-mode state machine (PR 8).
//
//   kHealthy --> kDegraded --> kReadOnly
//
// Transitions are monotonic (state only worsens; Reset() is the explicit
// administrative re-enable, the moral equivalent of `mount -o remount,rw`):
//
//   kDegraded  - retry-exhausted transient/timeout faults, or corruption
//                the redundancy layer had to heal around. The mount keeps
//                serving reads AND writes; the state is a visible warning
//                that the substrate is misbehaving (hidden reads lean on
//                IDA decode-and-heal here).
//   kReadOnly  - a PERSISTENT-classed write/sync fault: the device said
//                writes will keep failing, so continuing to mutate risks
//                tearing on-disk state. Every subsequent mutating op is
//                rejected with FailedPrecondition before it starts; the
//                op that tripped the state aborts its open journal txn
//                through the PR 5 deferred-free machinery (TxnGuard's
//                abort path), leaving the ring clean for remount recovery.
//
// Thread-safety: the state is one atomic; Report* may be called from any
// device/completion thread, CheckWritable from any op thread.
#ifndef STEGFS_FAULT_HEALTH_H_
#define STEGFS_FAULT_HEALTH_H_

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"
#include "util/status.h"

namespace stegfs {
namespace fault {

enum class MountHealth : int {
  kHealthy = 0,
  kDegraded = 1,
  kReadOnly = 2,
};

const char* MountHealthName(MountHealth h);

class HealthMonitor {
 public:
  MountHealth state() const {
    return static_cast<MountHealth>(state_.load(std::memory_order_acquire));
  }
  const char* state_name() const { return MountHealthName(state()); }

  // A read/write retried to exhaustion on transient-classed faults.
  void ReportRetryExhausted() { Worsen(MountHealth::kDegraded); }
  // Corruption detected (and ideally healed) below the file layer.
  void ReportCorruption() { Worsen(MountHealth::kDegraded); }
  // A persistent-classed fault on the write/sync path: stop mutating.
  void ReportPersistentWriteFault() { Worsen(MountHealth::kReadOnly); }
  // A persistent-classed fault on the read path: reads may still be
  // served degraded (IDA decode), writes are not implicated.
  void ReportPersistentReadFault() { Worsen(MountHealth::kDegraded); }

  // OK unless the mount is read-only; mutating ops call this first.
  Status CheckWritable() {
    if (state() != MountHealth::kReadOnly) return Status::OK();
    rejected_writes_.Increment();
    return Status::FailedPrecondition(
        "volume is read-only: a persistent write fault tripped degraded "
        "mode (steg_health_reset to re-enable writes)");
  }

  // Administrative re-enable after the operator fixed the substrate.
  void Reset() {
    state_.store(static_cast<int>(MountHealth::kHealthy),
                 std::memory_order_release);
  }

  uint64_t degraded_transitions() const {
    return degraded_transitions_.value();
  }
  uint64_t readonly_transitions() const {
    return readonly_transitions_.value();
  }
  uint64_t rejected_writes() const { return rejected_writes_.value(); }

  void RegisterWith(obs::MetricsRegistry* reg) const {
    reg->RegisterCounter("stegfs_health_degraded_transitions_total",
                         "Transitions into the degraded state",
                         &degraded_transitions_);
    reg->RegisterCounter("stegfs_health_readonly_transitions_total",
                         "Transitions into the read-only state",
                         &readonly_transitions_);
    reg->RegisterCounter("stegfs_health_rejected_writes_total",
                         "Mutating ops rejected while read-only",
                         &rejected_writes_);
  }

 private:
  void Worsen(MountHealth target);

  std::atomic<int> state_{static_cast<int>(MountHealth::kHealthy)};
  obs::Counter degraded_transitions_;
  obs::Counter readonly_transitions_;
  obs::Counter rejected_writes_;
};

}  // namespace fault
}  // namespace stegfs

#endif  // STEGFS_FAULT_HEALTH_H_
