// RetryPolicy: how the fault-tolerance decorators re-attempt transient
// faults (PR 8). Exponential backoff with DETERMINISTIC seeded jitter —
// the jitter for attempt A of op O is a pure function of (seed, O, A), so
// two runs against identical fault schedules produce identical retry
// sequences (the determinism the chaos matrix asserts), while different
// ops still decorrelate (no thundering-herd resubmission on a shared
// backend).
#ifndef STEGFS_FAULT_RETRY_POLICY_H_
#define STEGFS_FAULT_RETRY_POLICY_H_

#include <cstdint>

#include "fault/error_taxonomy.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace stegfs {
namespace fault {

struct RetryPolicy {
  // Total tries including the first. 1 = no retries (pure classification).
  uint32_t max_attempts = 4;
  // Backoff before retry r (1-based) is base * multiplier^(r-1), jittered
  // into [1/2, 1] of that value, capped at max_backoff_ns.
  uint64_t base_backoff_ns = 200 * 1000;         // 200 us
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_ns = 50 * 1000 * 1000;    // 50 ms
  // Budget for one op including every retry and sleep; once exceeded no
  // further attempt is made. 0 = unbounded.
  uint64_t op_deadline_ns = 2ull * 1000 * 1000 * 1000;  // 2 s
  // Jitter seed (deterministic; identical seeds => identical sequences).
  uint64_t jitter_seed = 0x5742;
};

// Backoff before retry `retry_number` (1-based) of op `op_seq` under
// `policy`. Pure function — the determinism contract lives here.
uint64_t BackoffNanos(const RetryPolicy& policy, uint64_t op_seq,
                      uint32_t retry_number);

// Fault/retry instruments of one mount, registered under stegfs_fault_*.
// Shared by the sync and async retry decorators (all counters are relaxed
// atomics, so both paths record concurrently).
struct FaultStats {
  obs::Counter transient_errors;
  obs::Counter persistent_errors;
  obs::Counter corruption_errors;
  obs::Counter timeout_errors;
  obs::Counter retries;           // re-attempts issued
  obs::Counter retry_successes;   // ops that failed then succeeded
  obs::Counter retry_exhausted;   // ops that failed every attempt
  obs::Histogram retry_backoff_ns;  // per-retry backoff slept
  obs::Histogram retry_latency_ns;  // total added latency of retried ops

  void CountClass(IoErrorClass cls) {
    switch (cls) {
      case IoErrorClass::kTransient:
        transient_errors.Increment();
        break;
      case IoErrorClass::kPersistent:
        persistent_errors.Increment();
        break;
      case IoErrorClass::kCorruption:
        corruption_errors.Increment();
        break;
      case IoErrorClass::kTimeout:
        timeout_errors.Increment();
        break;
      case IoErrorClass::kNone:
        break;
    }
  }

  void RegisterWith(obs::MetricsRegistry* reg) const {
    reg->RegisterCounter("stegfs_fault_transient_errors_total",
                         "Transient-classed device faults", &transient_errors);
    reg->RegisterCounter("stegfs_fault_persistent_errors_total",
                         "Persistent-classed device faults",
                         &persistent_errors);
    reg->RegisterCounter("stegfs_fault_corruption_errors_total",
                         "Corruption-classed device faults",
                         &corruption_errors);
    reg->RegisterCounter("stegfs_fault_timeout_errors_total",
                         "Timeout-classed device faults", &timeout_errors);
    reg->RegisterCounter("stegfs_fault_retries_total",
                         "Device op re-attempts issued", &retries);
    reg->RegisterCounter("stegfs_fault_retry_success_total",
                         "Device ops that succeeded after retrying",
                         &retry_successes);
    reg->RegisterCounter("stegfs_fault_retry_exhausted_total",
                         "Device ops that failed every retry attempt",
                         &retry_exhausted);
    reg->RegisterHistogram("stegfs_fault_retry_backoff_seconds",
                           "Backoff slept before each retry",
                           &retry_backoff_ns);
    reg->RegisterHistogram("stegfs_fault_retry_latency_seconds",
                           "Total added latency of retried ops",
                           &retry_latency_ns);
  }
};

}  // namespace fault
}  // namespace stegfs

#endif  // STEGFS_FAULT_RETRY_POLICY_H_
