// FaultInjectionBlockDevice: first-class, scriptable fault injection
// (PR 8) — the production promotion of the old test-only FaultyDevice
// (tests/test_device.h is now a thin compatibility shim over this).
//
// A BlockDevice decorator (or, for tests, an owner of a MemBlockDevice)
// that fires faults from a seeded, scriptable schedule of rules. Each
// rule names an op kind, a trigger (skip the first `after` matching ops,
// then fire `count` times), an optional block range, and a fault kind:
//
//   kTransientError - taxonomy-tagged transient EIO (the retry layer
//                     absorbs these)
//   kPersistentError- taxonomy-tagged persistent fault (trips the mount's
//                     degraded-mode state machine)
//   kUntaggedError  - plain Status::IOError, the legacy FaultyDevice
//                     behavior (classified transient by default)
//   kTornWrite      - the first half of the block lands, the rest keeps
//                     its old content, and a transient error returns — a
//                     power-cut-shaped tear the retry layer repairs by
//                     rewriting the full block
//   kBitFlip        - the read "succeeds" with one deterministically
//                     seeded bit flipped: silent corruption for the
//                     redundancy checksums + heal path to catch
//   kLatencySpike   - the op sleeps `delay_us` then succeeds (feeds the
//                     timeout class and latency histograms)
//   kTimeout        - taxonomy-tagged timeout error (retryable)
//
// Schedules are deterministic: the same seed + rules + workload produce
// the same fault sequence, which is what makes the chaos matrix
// (FAULT_matrix.json) reproducible across engines and runs.
//
// The string form, usable from the C API (steg_mount_faulty):
//
//   spec  := [ "seed=" N ";" ] rule { ";" rule }
//   rule  := op ":" kind [ "@" after ] [ "x" count ] { ":" param }
//   op    := "read" | "write" | "sync" | "any"
//   kind  := "eio" | "fail" | "error" | "torn" | "flip" | "delay"
//            | "timeout"
//   param := "blocks=" LO "-" HI | "us=" N
//
// e.g. "seed=7;write:eio@3x2;read:flip@10;sync:fail" — after 3 writes
// fail the next 2 with transient EIO, flip a bit in the 11th read, and
// fail every sync persistently. `count` defaults to 1 except for
// "fail"/"error", which default to forever (the FaultyDevice semantics:
// armed until healed).
//
// Thread-safe: rule matching takes an internal mutex, so faults can be
// armed, fired and healed while other threads are mid-I/O (the
// concurrency suites inject under contention).
#ifndef STEGFS_FAULT_FAULT_INJECTION_DEVICE_H_
#define STEGFS_FAULT_FAULT_INJECTION_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "blockdev/block_device.h"
#include "blockdev/mem_block_device.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {
namespace fault {

struct FaultRule {
  enum class Op { kRead, kWrite, kSync, kAny };
  enum class Kind {
    kTransientError,
    kPersistentError,
    kUntaggedError,
    kTornWrite,
    kBitFlip,
    kLatencySpike,
    kTimeout,
  };
  static constexpr uint64_t kForever = std::numeric_limits<uint64_t>::max();

  Op op = Op::kAny;
  Kind kind = Kind::kTransientError;
  uint64_t after = 0;   // skip this many matching ops first
  uint64_t count = 1;   // then fire this many times (kForever = until heal)
  uint64_t block_lo = 0;
  uint64_t block_hi = std::numeric_limits<uint64_t>::max();
  uint64_t delay_us = 1000;  // kLatencySpike sleep
};

class FaultInjectionBlockDevice : public BlockDevice {
 public:
  // Decorator form: injects above an existing device (not owned).
  explicit FaultInjectionBlockDevice(BlockDevice* inner, uint64_t seed = 0);
  // Owning form: a RAM-backed volume with injection, for tests.
  FaultInjectionBlockDevice(uint32_t block_size, uint64_t num_blocks,
                            uint64_t seed = 0);

  // --- schedule -----------------------------------------------------------
  void AddRule(const FaultRule& rule);
  void ClearRules();  // heal: no further faults fire
  void set_seed(uint64_t seed);
  // Parses the spec string documented above; on success replaces the
  // current schedule (and seed, when the spec names one).
  Status LoadSchedule(std::string_view spec);
  static StatusOr<std::vector<FaultRule>> ParseSchedule(std::string_view spec,
                                                        uint64_t* seed_out);

  uint64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  // Owning form's backing store (nullptr in decorator form) — tests use
  // it to corrupt or inspect raw blocks beneath the injection layer.
  MemBlockDevice* mem() { return owned_.get(); }

  // --- BlockDevice --------------------------------------------------------
  uint32_t block_size() const override { return inner_->block_size(); }
  uint64_t num_blocks() const override { return inner_->num_blocks(); }
  Status ReadBlock(uint64_t block, uint8_t* buf) override;
  Status WriteBlock(uint64_t block, const uint8_t* buf) override;
  Status Flush() override { return inner_->Flush(); }
  Status Sync() override;
  uint64_t sync_count() const override {
    return syncs_.load(std::memory_order_relaxed);
  }
  DeviceBatchStats batch_stats() const override {
    return inner_->batch_stats();
  }
  const DeviceMetrics* device_metrics() const override {
    return inner_->device_metrics();
  }
  void set_flush_durability(FlushDurability mode) override {
    inner_->set_flush_durability(mode);
  }
  FlushDurability flush_durability() const override {
    return inner_->flush_durability();
  }

 private:
  struct Armed {
    FaultRule rule;
    uint64_t skip_left = 0;
    uint64_t fires_left = 0;
  };
  struct Fired {
    bool fire = false;
    FaultRule::Kind kind = FaultRule::Kind::kTransientError;
    uint64_t delay_us = 0;
    uint64_t fire_seq = 0;  // per-device fire counter, seeds the bit flip
  };

  // Consumes trigger state for one op; returns what (if anything) fires.
  Fired Match(FaultRule::Op op, uint64_t block);
  Status InjectedError(FaultRule::Kind kind, const char* what) const;

  BlockDevice* inner_;                     // the device I/O goes to
  std::unique_ptr<MemBlockDevice> owned_;  // set in the owning form
  std::mutex mu_;                          // guards rules_ + seed_
  std::vector<Armed> rules_;
  uint64_t seed_ = 0;
  uint64_t fire_seq_ = 0;
  std::atomic<uint64_t> injected_{0};
  std::atomic<uint64_t> syncs_{0};
};

}  // namespace fault
}  // namespace stegfs

#endif  // STEGFS_FAULT_FAULT_INJECTION_DEVICE_H_
