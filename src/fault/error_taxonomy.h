// Fault taxonomy (PR 8): every BlockDevice / AsyncBlockDevice result is
// classified into one of four handling classes before the stack reacts:
//
//   kTransient  - momentary substrate hiccup (EIO under load, a dropped
//                 remote-carrier request). Worth retrying with backoff;
//                 the RetryingBlockDevice / RetryingAsyncDevice decorators
//                 absorb these below the cache and journal.
//   kTimeout    - the op exceeded its deadline (latency spike on a
//                 high-latency carrier). Retryable like kTransient, but
//                 counted separately so a slow backend is distinguishable
//                 from a flaky one.
//   kPersistent - the device says this will keep failing (ENOSPC, EROFS,
//                 dead backend). Never retried; a persistent WRITE fault
//                 trips the mount's degraded-mode state machine straight
//                 to kReadOnly (see fault/health.h).
//   kCorruption - the bytes moved but failed validation. Not retried at
//                 the device layer — the redundancy heal path
//                 (decode-from-any-k + re-disperse) is the correct
//                 response, and it owns these.
//
// Producers tag statuses at the source (Status::TransientIOError etc.,
// FaultInjectionBlockDevice's scripted faults); Classify() fills in
// defaults for untagged errors so legacy Status::IOError call sites get
// sane handling without a global rewrite.
#ifndef STEGFS_FAULT_ERROR_TAXONOMY_H_
#define STEGFS_FAULT_ERROR_TAXONOMY_H_

#include "util/status.h"

namespace stegfs {
namespace fault {

// Effective class of a status: the producer's tag when present, else a
// conservative default by code. Untagged kIOError defaults to kTransient —
// a retry of a genuinely dead device costs a few backoff sleeps and then
// degrades, while NOT retrying a recoverable blip on a lossy carrier
// loses the op outright; the asymmetry favors retrying.
inline IoErrorClass Classify(const Status& s) {
  if (s.ok()) return IoErrorClass::kNone;
  if (s.io_class() != IoErrorClass::kNone) return s.io_class();
  switch (s.code()) {
    case StatusCode::kIOError:
      return IoErrorClass::kTransient;
    case StatusCode::kCorruption:
    case StatusCode::kDataLoss:
      return IoErrorClass::kCorruption;
    default:
      return IoErrorClass::kNone;  // not an I/O fault: surface unchanged
  }
}

// Whether the retry decorators should re-attempt an op that failed with
// this status.
inline bool IsRetryable(const Status& s) {
  const IoErrorClass cls = Classify(s);
  return cls == IoErrorClass::kTransient || cls == IoErrorClass::kTimeout;
}

inline const char* IoErrorClassName(IoErrorClass cls) {
  switch (cls) {
    case IoErrorClass::kNone:
      return "none";
    case IoErrorClass::kTransient:
      return "transient";
    case IoErrorClass::kPersistent:
      return "persistent";
    case IoErrorClass::kCorruption:
      return "corruption";
    case IoErrorClass::kTimeout:
      return "timeout";
  }
  return "unknown";
}

}  // namespace fault
}  // namespace stegfs

#endif  // STEGFS_FAULT_ERROR_TAXONOMY_H_
