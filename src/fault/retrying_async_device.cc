#include "fault/retrying_async_device.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace stegfs {
namespace fault {

RetryingAsyncDevice::RetryingAsyncDevice(
    std::unique_ptr<AsyncBlockDevice> inner, const RetryPolicy& policy,
    FaultStats* stats, HealthMonitor* health)
    : inner_(std::move(inner)),
      policy_(policy),
      stats_(stats),
      health_(health) {
  worker_ = std::thread([this] { RetryWorker(); });
}

RetryingAsyncDevice::~RetryingAsyncDevice() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  worker_cv_.notify_all();
  worker_.join();
  // inner_ destruction drains its own in-flight work.
}

IoTicket RetryingAsyncDevice::SubmitRead(std::vector<BlockIoVec> iov,
                                         IoCompletionFn done) {
  auto op = std::make_shared<PendingOp>();
  op->is_read = true;
  op->riov = std::move(iov);
  op->blocks = op->riov.size();
  op->done = std::move(done);
  return SubmitOp(std::move(op));
}

IoTicket RetryingAsyncDevice::SubmitWrite(std::vector<ConstBlockIoVec> iov,
                                          IoCompletionFn done) {
  auto op = std::make_shared<PendingOp>();
  op->is_read = false;
  op->wiov = std::move(iov);
  op->blocks = op->wiov.size();
  op->done = std::move(done);
  return SubmitOp(std::move(op));
}

IoTicket RetryingAsyncDevice::SubmitOp(std::shared_ptr<PendingOp> op) {
  op->ctx = obs::CurrentSpanContext();
  op->op_seq = op_seq_.fetch_add(1, std::memory_order_relaxed);
  submitted_batches_.fetch_add(1, std::memory_order_relaxed);
  submitted_blocks_.fetch_add(op->blocks, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  IoTicket ticket = op->completion.ticket();
  SubmitToInner(op);
  return ticket;
}

void RetryingAsyncDevice::SubmitToInner(const std::shared_ptr<PendingOp>& op) {
  // The inner engine owns a COPY of the iov: resubmission needs the
  // original, and the engine contract moves the vector in.
  auto on_done = [this, op](const Status& s) { OnInnerComplete(op, s); };
  if (op->is_read) {
    std::vector<BlockIoVec> iov = op->riov;
    inner_->SubmitRead(std::move(iov), std::move(on_done));
  } else {
    std::vector<ConstBlockIoVec> iov = op->wiov;
    inner_->SubmitWrite(std::move(iov), std::move(on_done));
  }
}

void RetryingAsyncDevice::OnInnerComplete(std::shared_ptr<PendingOp> op,
                                          const Status& s) {
  if (!s.ok()) {
    const IoErrorClass cls = Classify(s);
    if (stats_ != nullptr) stats_->CountClass(cls);
    if (IsRetryable(s)) {
      if (op->first_submit_ns == 0) op->first_submit_ns = obs::NowNanos();
      const uint64_t elapsed = obs::NowNanos() - op->first_submit_ns;
      const bool budget_left =
          op->attempt < policy_.max_attempts &&
          (policy_.op_deadline_ns == 0 || elapsed < policy_.op_deadline_ns);
      if (budget_left) {
        // Completion threads must not resubmit (engine contract): park the
        // batch for the retry worker and leave the outer ticket pending.
        const uint64_t backoff = BackoffNanos(policy_, op->op_seq, op->attempt);
        if (stats_ != nullptr) {
          stats_->retries.Increment();
          stats_->retry_backoff_ns.Record(backoff);
        }
        op->wake_at_ns = obs::NowNanos() + backoff;
        ++op->attempt;
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!stop_) {
            retry_queue_.push_back(std::move(op));
            worker_cv_.notify_one();
            return;
          }
        }
        // Shutdown raced the retry: fall through and surface the fault.
      } else {
        if (stats_ != nullptr) stats_->retry_exhausted.Increment();
        if (health_ != nullptr) health_->ReportRetryExhausted();
      }
    } else if (health_ != nullptr) {
      if (cls == IoErrorClass::kPersistent) {
        if (op->is_read) {
          health_->ReportPersistentReadFault();
        } else {
          health_->ReportPersistentWriteFault();
        }
      } else if (cls == IoErrorClass::kCorruption) {
        health_->ReportCorruption();
      }
    }
  } else if (op->attempt > 1 && stats_ != nullptr) {
    stats_->retry_successes.Increment();
    stats_->retry_latency_ns.Record(obs::NowNanos() - op->first_submit_ns);
  }
  FinalizeOp(op, s);
}

void RetryingAsyncDevice::FinalizeOp(const std::shared_ptr<PendingOp>& op,
                                     const Status& s) {
  completed_batches_.fetch_add(1, std::memory_order_relaxed);
  if (!s.ok()) failed_batches_.fetch_add(1, std::memory_order_relaxed);
  // Same finalize order as the engines (AsyncBatchState contract): the
  // caller's callback runs first — under the submitter's span so a
  // retried batch's completion lands in the right operation tree — then
  // the outstanding count drops (Drain covers the callback), and the
  // ticket unblocks last.
  if (op->done) {
    obs::Span cont(op->ctx, "fault.complete", "fault");
    op->done(s);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
    drain_cv_.notify_all();
  }
  op->completion.Complete(s);
}

void RetryingAsyncDevice::RetryWorker() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (retry_queue_.empty()) {
      if (stop_) return;
      worker_cv_.wait(lock);
      continue;
    }
    // Earliest-deadline-first keeps resubmission order deterministic for
    // identical schedules (ties broken by queue order, which is the
    // completion order the schedule produced).
    auto it = std::min_element(
        retry_queue_.begin(), retry_queue_.end(),
        [](const std::shared_ptr<PendingOp>& a,
           const std::shared_ptr<PendingOp>& b) {
          return a->wake_at_ns < b->wake_at_ns;
        });
    const uint64_t now = obs::NowNanos();
    if ((*it)->wake_at_ns > now && !stop_) {
      worker_cv_.wait_for(
          lock, std::chrono::nanoseconds((*it)->wake_at_ns - now));
      continue;
    }
    std::shared_ptr<PendingOp> op = std::move(*it);
    retry_queue_.erase(it);
    lock.unlock();
    {
      // Continuation span: the resubmission (and any span the inner
      // engine opens during Submit) nests under the original operation.
      obs::Span retry_span(op->ctx, "fault.retry", "fault");
      SubmitToInner(op);
    }
    lock.lock();
  }
}

void RetryingAsyncDevice::Drain() {
  // Quiesce the inner engine and every parked retry. A retry completing
  // with another retryable fault re-enters the queue, so loop until the
  // outer count is zero — bounded by max_attempts per op.
  while (true) {
    inner_->Drain();
    std::unique_lock<std::mutex> lock(mu_);
    if (outstanding_ == 0) return;
    // Wake the worker in case everything outstanding is parked.
    worker_cv_.notify_all();
    drain_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

AsyncIoStats RetryingAsyncDevice::stats() const {
  // The outer view: batches as the callers submitted them (inner counts
  // every resubmission as a fresh batch, which would double-count).
  AsyncIoStats inner_stats = inner_->stats();
  AsyncIoStats s;
  s.submitted_batches = submitted_batches_.load(std::memory_order_relaxed);
  s.submitted_blocks = submitted_blocks_.load(std::memory_order_relaxed);
  s.completed_batches = completed_batches_.load(std::memory_order_relaxed);
  s.failed_batches = failed_batches_.load(std::memory_order_relaxed);
  s.inflight_blocks = inner_stats.inflight_blocks;
  s.fixed_buffer_ops = inner_stats.fixed_buffer_ops;
  s.fixed_buffer_read_ops = inner_stats.fixed_buffer_read_ops;
  return s;
}

}  // namespace fault
}  // namespace stegfs
