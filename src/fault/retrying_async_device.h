// RetryingAsyncDevice: the asynchronous half of the fault-tolerance layer
// (PR 8). Wraps any AsyncBlockDevice and re-submits batches that complete
// with a transient/timeout-classed status under the same RetryPolicy as
// the sync decorator.
//
// Why a dedicated retry thread: the AsyncBlockDevice contract forbids a
// completion callback from submitting new batches or waiting on tickets
// of the same engine (either can deadlock the completion thread behind
// itself). So a retryable completion does NOT resubmit inline — it parks
// the batch on the retry worker's queue and returns; the worker sleeps
// the deterministic backoff and resubmits from its own thread. The
// caller's ticket and completion callback stay pending across the whole
// dance and fire exactly once, with the final status.
//
// Trace continuity: the submitter's SpanContext is captured at the OUTER
// submit, each resubmission runs under a "fault.retry" continuation span
// of it, and the caller's completion runs with that context current — the
// same cross-thread hand-off the engines already use, so a retried batch
// stays one operation tree in the trace ring.
//
// Buffer lifetime is the engine contract unchanged: the caller keeps the
// data buffers alive until the OUTER ticket completes, which covers every
// inner resubmission.
#ifndef STEGFS_FAULT_RETRYING_ASYNC_DEVICE_H_
#define STEGFS_FAULT_RETRYING_ASYNC_DEVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "blockdev/async_block_device.h"
#include "fault/health.h"
#include "fault/retry_policy.h"
#include "obs/trace.h"

namespace stegfs {
namespace fault {

class RetryingAsyncDevice : public AsyncBlockDevice {
 public:
  RetryingAsyncDevice(std::unique_ptr<AsyncBlockDevice> inner,
                      const RetryPolicy& policy, FaultStats* stats,
                      HealthMonitor* health);
  ~RetryingAsyncDevice() override;

  uint32_t block_size() const override { return inner_->block_size(); }
  uint64_t num_blocks() const override { return inner_->num_blocks(); }
  // The engine identity is the inner engine's: callers key behavior (and
  // tests key assertions) off "io_uring" / "thread-pool", and the retry
  // wrapper changes neither.
  const char* engine_name() const override { return inner_->engine_name(); }

  IoTicket SubmitRead(std::vector<BlockIoVec> iov,
                      IoCompletionFn done = nullptr) override;
  IoTicket SubmitWrite(std::vector<ConstBlockIoVec> iov,
                       IoCompletionFn done = nullptr) override;

  void Drain() override;

  uint8_t* AcquireArenaSpan(size_t blocks) override {
    return inner_->AcquireArenaSpan(blocks);
  }
  void ReleaseArenaSpan(uint8_t* span) override {
    inner_->ReleaseArenaSpan(span);
  }
  size_t arena_span_blocks() const override {
    return inner_->arena_span_blocks();
  }
  uint8_t* AcquireReadSpan(size_t blocks) override {
    return inner_->AcquireReadSpan(blocks);
  }
  void ReleaseReadSpan(uint8_t* span) override {
    inner_->ReleaseReadSpan(span);
  }
  size_t read_span_blocks() const override {
    return inner_->read_span_blocks();
  }

  AsyncIoStats stats() const override;
  void RegisterMetrics(obs::MetricsRegistry* reg) const override {
    inner_->RegisterMetrics(reg);
  }

  AsyncBlockDevice* inner() { return inner_.get(); }

 private:
  // One outer batch, alive from outer submit to outer completion.
  struct PendingOp {
    bool is_read = false;
    std::vector<BlockIoVec> riov;
    std::vector<ConstBlockIoVec> wiov;
    IoCompletionFn done;
    IoCompletion completion;
    obs::SpanContext ctx;     // submitter's span, for continuations
    uint64_t op_seq = 0;      // feeds the deterministic jitter
    uint32_t attempt = 1;     // attempts issued so far
    uint64_t first_submit_ns = 0;
    uint64_t wake_at_ns = 0;  // when the worker may resubmit
    size_t blocks = 0;
  };

  IoTicket SubmitOp(std::shared_ptr<PendingOp> op);
  void SubmitToInner(const std::shared_ptr<PendingOp>& op);
  void OnInnerComplete(std::shared_ptr<PendingOp> op, const Status& s);
  void FinalizeOp(const std::shared_ptr<PendingOp>& op, const Status& s);
  void RetryWorker();

  std::unique_ptr<AsyncBlockDevice> inner_;
  const RetryPolicy policy_;
  FaultStats* stats_;
  HealthMonitor* health_;

  std::atomic<uint64_t> op_seq_{0};
  std::atomic<uint64_t> submitted_batches_{0};
  std::atomic<uint64_t> completed_batches_{0};
  std::atomic<uint64_t> failed_batches_{0};
  std::atomic<uint64_t> submitted_blocks_{0};

  // outstanding_ counts outer batches from submit to finalize (parked
  // retries included), so Drain() covers faults mid-backoff.
  std::mutex mu_;
  std::condition_variable drain_cv_;
  std::condition_variable worker_cv_;
  uint64_t outstanding_ = 0;
  bool stop_ = false;
  std::deque<std::shared_ptr<PendingOp>> retry_queue_;
  std::thread worker_;
};

}  // namespace fault
}  // namespace stegfs

#endif  // STEGFS_FAULT_RETRYING_ASYNC_DEVICE_H_
