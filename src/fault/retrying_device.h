// RetryingBlockDevice: the synchronous half of the fault-tolerance layer
// (PR 8). A BlockDevice decorator that classifies every inner error
// (fault/error_taxonomy.h) and re-attempts transient/timeout-classed ones
// under a RetryPolicy — exponential backoff, deterministic seeded jitter,
// per-op deadline. Sits between the buffer cache / journal and the real
// device on fault-tolerant mounts, so the layers above only ever see
// faults that survived the policy.
//
// What it reports where:
//   - every fault's class        -> FaultStats counters
//   - retries exhausted          -> HealthMonitor::ReportRetryExhausted
//   - persistent-classed faults  -> HealthMonitor::ReportPersistentWrite/
//                                   ReadFault (write/sync faults trip the
//                                   mount read-only)
//
// Success path cost is one virtual hop and one ok() branch — the bench
// gate holds fault-tolerant mounts within 3% of raw on the fault-free
// 1 MiB sequential path.
//
// Decorator conventions (blockdev/block_device.h): device_metrics() and
// Sync()/sync_count() forward to the inner device; file_descriptor() is
// deliberately NOT forwarded, but fault-tolerant mounts attach io_uring to
// the RAW device's descriptor anyway and wrap the ENGINE in
// RetryingAsyncDevice instead, so the async path keeps its own retries.
#ifndef STEGFS_FAULT_RETRYING_DEVICE_H_
#define STEGFS_FAULT_RETRYING_DEVICE_H_

#include <atomic>
#include <cstdint>

#include "blockdev/block_device.h"
#include "fault/health.h"
#include "fault/retry_policy.h"
#include "util/status.h"

namespace stegfs {
namespace fault {

class RetryingBlockDevice : public BlockDevice {
 public:
  // `stats` and `health` may be null (counters / state transitions are
  // then skipped); `inner` must outlive this decorator.
  RetryingBlockDevice(BlockDevice* inner, const RetryPolicy& policy,
                      FaultStats* stats, HealthMonitor* health)
      : inner_(inner), policy_(policy), stats_(stats), health_(health) {}

  uint32_t block_size() const override { return inner_->block_size(); }
  uint64_t num_blocks() const override { return inner_->num_blocks(); }

  Status ReadBlock(uint64_t block, uint8_t* buf) override;
  Status WriteBlock(uint64_t block, const uint8_t* buf) override;
  Status ReadBlocks(const BlockIoVec* iov, size_t n) override;
  Status WriteBlocks(const ConstBlockIoVec* iov, size_t n) override;
  Status Flush() override;
  Status Sync() override;

  uint64_t sync_count() const override { return inner_->sync_count(); }
  DeviceBatchStats batch_stats() const override {
    return inner_->batch_stats();
  }
  const DeviceMetrics* device_metrics() const override {
    return inner_->device_metrics();
  }
  void set_flush_durability(FlushDurability mode) override {
    inner_->set_flush_durability(mode);
  }
  FlushDurability flush_durability() const override {
    return inner_->flush_durability();
  }

  BlockDevice* inner() { return inner_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  // Runs `fn` (returning Status) under the retry policy. `is_write`
  // selects which health transition a persistent fault causes.
  template <typename Fn>
  Status RunWithRetry(bool is_write, Fn&& fn);

  BlockDevice* inner_;
  RetryPolicy policy_;
  FaultStats* stats_;
  HealthMonitor* health_;
  // Per-op sequence feeding the deterministic jitter.
  std::atomic<uint64_t> op_seq_{0};
};

}  // namespace fault
}  // namespace stegfs

#endif  // STEGFS_FAULT_RETRYING_DEVICE_H_
