#include "fault/retry_policy.h"

namespace stegfs {
namespace fault {

namespace {
// splitmix64: the standard 64-bit finalizer — enough mixing that
// consecutive (op, attempt) pairs decorrelate, and fully deterministic.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

uint64_t BackoffNanos(const RetryPolicy& policy, uint64_t op_seq,
                      uint32_t retry_number) {
  if (retry_number == 0) return 0;
  double backoff = static_cast<double>(policy.base_backoff_ns);
  for (uint32_t i = 1; i < retry_number; ++i) {
    backoff *= policy.backoff_multiplier;
    if (backoff >= static_cast<double>(policy.max_backoff_ns)) break;
  }
  uint64_t ns = static_cast<uint64_t>(backoff);
  if (ns > policy.max_backoff_ns) ns = policy.max_backoff_ns;
  // Jitter into [ns/2, ns]: decorrelates ops without ever collapsing the
  // backoff to zero (a zero sleep defeats the point of backing off).
  const uint64_t h =
      Mix64(policy.jitter_seed ^ Mix64(op_seq) ^ (retry_number * 0x9e37ull));
  return ns / 2 + (ns > 1 ? h % (ns - ns / 2 + 1) : 0);
}

}  // namespace fault
}  // namespace stegfs
