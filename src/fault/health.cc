#include "fault/health.h"

namespace stegfs {
namespace fault {

const char* MountHealthName(MountHealth h) {
  switch (h) {
    case MountHealth::kHealthy:
      return "healthy";
    case MountHealth::kDegraded:
      return "degraded";
    case MountHealth::kReadOnly:
      return "read-only";
  }
  return "unknown";
}

void HealthMonitor::Worsen(MountHealth target) {
  int cur = state_.load(std::memory_order_acquire);
  const int want = static_cast<int>(target);
  // Monotonic CAS-max: concurrent reporters never move the state back, and
  // exactly one of them wins each forward transition (so the transition
  // counters count transitions, not reports).
  while (cur < want) {
    if (state_.compare_exchange_weak(cur, want, std::memory_order_acq_rel)) {
      if (target == MountHealth::kDegraded) {
        degraded_transitions_.Increment();
      } else {
        readonly_transitions_.Increment();
        // Jumping straight from healthy to read-only passes through
        // degraded conceptually; count it so "was ever degraded" queries
        // stay monotone.
        if (cur == static_cast<int>(MountHealth::kHealthy)) {
          degraded_transitions_.Increment();
        }
      }
      return;
    }
  }
}

}  // namespace fault
}  // namespace stegfs
