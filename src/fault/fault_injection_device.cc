#include "fault/fault_injection_device.h"

#include <chrono>
#include <cstring>
#include <thread>

namespace stegfs {
namespace fault {

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

std::vector<std::string_view> SplitOn(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
    if (start > s.size()) break;
  }
  return parts;
}

}  // namespace

FaultInjectionBlockDevice::FaultInjectionBlockDevice(BlockDevice* inner,
                                                     uint64_t seed)
    : inner_(inner), seed_(seed) {}

FaultInjectionBlockDevice::FaultInjectionBlockDevice(uint32_t block_size,
                                                     uint64_t num_blocks,
                                                     uint64_t seed)
    : owned_(std::make_unique<MemBlockDevice>(block_size, num_blocks)),
      seed_(seed) {
  inner_ = owned_.get();
}

void FaultInjectionBlockDevice::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  Armed a;
  a.rule = rule;
  a.skip_left = rule.after;
  a.fires_left = rule.count;
  rules_.push_back(a);
}

void FaultInjectionBlockDevice::ClearRules() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
}

void FaultInjectionBlockDevice::set_seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

StatusOr<std::vector<FaultRule>> FaultInjectionBlockDevice::ParseSchedule(
    std::string_view spec, uint64_t* seed_out) {
  std::vector<FaultRule> rules;
  for (std::string_view entry : SplitOn(spec, ';')) {
    if (entry.empty()) continue;
    if (entry.substr(0, 5) == "seed=") {
      uint64_t seed = 0;
      if (!ParseU64(entry.substr(5), &seed)) {
        return Status::InvalidArgument("fault spec: bad seed: " +
                                       std::string(entry));
      }
      if (seed_out != nullptr) *seed_out = seed;
      continue;
    }
    std::vector<std::string_view> fields = SplitOn(entry, ':');
    if (fields.size() < 2) {
      return Status::InvalidArgument("fault spec: want op:kind[...]: " +
                                     std::string(entry));
    }
    FaultRule rule;
    if (fields[0] == "read") {
      rule.op = FaultRule::Op::kRead;
    } else if (fields[0] == "write") {
      rule.op = FaultRule::Op::kWrite;
    } else if (fields[0] == "sync") {
      rule.op = FaultRule::Op::kSync;
    } else if (fields[0] == "any") {
      rule.op = FaultRule::Op::kAny;
    } else {
      return Status::InvalidArgument("fault spec: unknown op: " +
                                     std::string(fields[0]));
    }

    // kind [ '@' after ] [ 'x' count ]
    std::string_view kind = fields[1];
    std::string_view trigger;
    const size_t at = kind.find('@');
    if (at != std::string_view::npos) {
      trigger = kind.substr(at + 1);
      kind = kind.substr(0, at);
    }
    if (kind == "eio") {
      rule.kind = FaultRule::Kind::kTransientError;
    } else if (kind == "fail") {
      rule.kind = FaultRule::Kind::kPersistentError;
      rule.count = FaultRule::kForever;
    } else if (kind == "error") {
      rule.kind = FaultRule::Kind::kUntaggedError;
      rule.count = FaultRule::kForever;
    } else if (kind == "torn") {
      rule.kind = FaultRule::Kind::kTornWrite;
    } else if (kind == "flip") {
      rule.kind = FaultRule::Kind::kBitFlip;
    } else if (kind == "delay") {
      rule.kind = FaultRule::Kind::kLatencySpike;
    } else if (kind == "timeout") {
      rule.kind = FaultRule::Kind::kTimeout;
    } else {
      return Status::InvalidArgument("fault spec: unknown kind: " +
                                     std::string(kind));
    }
    if (!trigger.empty()) {
      const size_t x = trigger.find('x');
      std::string_view after = trigger.substr(0, x == std::string_view::npos
                                                     ? trigger.size()
                                                     : x);
      if (!after.empty() && !ParseU64(after, &rule.after)) {
        return Status::InvalidArgument("fault spec: bad trigger: " +
                                       std::string(entry));
      }
      if (x != std::string_view::npos &&
          !ParseU64(trigger.substr(x + 1), &rule.count)) {
        return Status::InvalidArgument("fault spec: bad count: " +
                                       std::string(entry));
      }
    }
    for (size_t i = 2; i < fields.size(); ++i) {
      std::string_view param = fields[i];
      if (param.substr(0, 7) == "blocks=") {
        std::string_view range = param.substr(7);
        const size_t dash = range.find('-');
        if (dash == std::string_view::npos ||
            !ParseU64(range.substr(0, dash), &rule.block_lo) ||
            !ParseU64(range.substr(dash + 1), &rule.block_hi)) {
          return Status::InvalidArgument("fault spec: bad block range: " +
                                         std::string(entry));
        }
      } else if (param.substr(0, 3) == "us=") {
        if (!ParseU64(param.substr(3), &rule.delay_us)) {
          return Status::InvalidArgument("fault spec: bad delay: " +
                                         std::string(entry));
        }
      } else {
        return Status::InvalidArgument("fault spec: unknown param: " +
                                       std::string(param));
      }
    }
    rules.push_back(rule);
  }
  return rules;
}

Status FaultInjectionBlockDevice::LoadSchedule(std::string_view spec) {
  uint64_t seed = seed_;
  STEGFS_ASSIGN_OR_RETURN(std::vector<FaultRule> rules,
                          ParseSchedule(spec, &seed));
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  for (const FaultRule& r : rules) {
    Armed a;
    a.rule = r;
    a.skip_left = r.after;
    a.fires_left = r.count;
    rules_.push_back(a);
  }
  seed_ = seed;
  return Status::OK();
}

FaultInjectionBlockDevice::Fired FaultInjectionBlockDevice::Match(
    FaultRule::Op op, uint64_t block) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Armed& a : rules_) {
    const FaultRule& r = a.rule;
    if (r.op != FaultRule::Op::kAny && r.op != op) continue;
    if (op != FaultRule::Op::kSync &&
        (block < r.block_lo || block > r.block_hi)) {
      continue;
    }
    if (a.fires_left == 0) continue;  // spent
    if (a.skip_left > 0) {
      // The countdown burns on MATCHING ops only (the FaultyDevice
      // semantics: "fail after N more operations of this kind").
      --a.skip_left;
      continue;
    }
    if (a.fires_left != FaultRule::kForever) --a.fires_left;
    Fired f;
    f.fire = true;
    f.kind = r.kind;
    f.delay_us = r.delay_us;
    f.fire_seq = fire_seq_++;
    injected_.fetch_add(1, std::memory_order_relaxed);
    return f;
  }
  return {};
}

Status FaultInjectionBlockDevice::InjectedError(FaultRule::Kind kind,
                                                const char* what) const {
  switch (kind) {
    case FaultRule::Kind::kPersistentError:
      return Status::PersistentIOError(std::string("injected persistent ") +
                                       what + " fault");
    case FaultRule::Kind::kTimeout:
      return Status::TimeoutIOError(std::string("injected ") + what +
                                    " timeout");
    case FaultRule::Kind::kUntaggedError:
      return Status::IOError(std::string("injected ") + what + " fault");
    default:
      return Status::TransientIOError(std::string("injected transient ") +
                                      what + " fault");
  }
}

Status FaultInjectionBlockDevice::ReadBlock(uint64_t block, uint8_t* buf) {
  const Fired f = Match(FaultRule::Op::kRead, block);
  if (f.fire) {
    switch (f.kind) {
      case FaultRule::Kind::kLatencySpike:
        std::this_thread::sleep_for(std::chrono::microseconds(f.delay_us));
        break;
      case FaultRule::Kind::kBitFlip: {
        Status s = inner_->ReadBlock(block, buf);
        if (!s.ok()) return s;
        // Deterministic silent corruption: which bit flips is a pure
        // function of (seed, fire sequence, block).
        const uint64_t nbits = static_cast<uint64_t>(block_size()) * 8;
        const uint64_t bit =
            Mix64(seed_ ^ Mix64(f.fire_seq) ^ block) % nbits;
        buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        return Status::OK();
      }
      case FaultRule::Kind::kTornWrite:  // not a read fault: ignore
        break;
      default:
        return InjectedError(f.kind, "read");
    }
  }
  return inner_->ReadBlock(block, buf);
}

Status FaultInjectionBlockDevice::WriteBlock(uint64_t block,
                                             const uint8_t* buf) {
  const Fired f = Match(FaultRule::Op::kWrite, block);
  if (f.fire) {
    switch (f.kind) {
      case FaultRule::Kind::kLatencySpike:
        std::this_thread::sleep_for(std::chrono::microseconds(f.delay_us));
        break;
      case FaultRule::Kind::kTornWrite: {
        // Half the new bytes land, the tail keeps its old content — and
        // the op FAILS transiently, so a retry rewrites the full block.
        std::vector<uint8_t> torn(block_size());
        if (!inner_->ReadBlock(block, torn.data()).ok()) {
          std::memset(torn.data(), 0, torn.size());
        }
        std::memcpy(torn.data(), buf, block_size() / 2);
        (void)inner_->WriteBlock(block, torn.data());
        return Status::TransientIOError("injected torn write");
      }
      case FaultRule::Kind::kBitFlip:  // not a write fault: ignore
        break;
      default:
        return InjectedError(f.kind, "write");
    }
  }
  return inner_->WriteBlock(block, buf);
}

Status FaultInjectionBlockDevice::Sync() {
  const Fired f = Match(FaultRule::Op::kSync, 0);
  if (f.fire) {
    switch (f.kind) {
      case FaultRule::Kind::kLatencySpike:
        std::this_thread::sleep_for(std::chrono::microseconds(f.delay_us));
        break;
      case FaultRule::Kind::kTornWrite:
      case FaultRule::Kind::kBitFlip:
        break;
      default:
        return InjectedError(f.kind, "sync");
    }
  }
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return inner_->Sync();
}

}  // namespace fault
}  // namespace stegfs
