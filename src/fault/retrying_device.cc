#include "fault/retrying_device.h"

#include <chrono>
#include <thread>
#include <utility>

#include "obs/trace.h"

namespace stegfs {
namespace fault {

template <typename Fn>
Status RetryingBlockDevice::RunWithRetry(bool is_write, Fn&& fn) {
  Status s = fn();
  if (s.ok()) return s;  // fault-free fast path: no seq, no clock

  const uint64_t op = op_seq_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t t0 = obs::NowNanos();
  uint32_t attempt = 1;
  while (true) {
    const IoErrorClass cls = Classify(s);
    if (stats_ != nullptr) stats_->CountClass(cls);
    if (!IsRetryable(s)) {
      if (health_ != nullptr) {
        if (cls == IoErrorClass::kPersistent) {
          if (is_write) {
            health_->ReportPersistentWriteFault();
          } else {
            health_->ReportPersistentReadFault();
          }
        } else if (cls == IoErrorClass::kCorruption) {
          health_->ReportCorruption();
        }
      }
      return s;
    }
    const uint64_t elapsed = obs::NowNanos() - t0;
    if (attempt >= policy_.max_attempts ||
        (policy_.op_deadline_ns != 0 && elapsed >= policy_.op_deadline_ns)) {
      if (stats_ != nullptr) {
        stats_->retry_exhausted.Increment();
        stats_->retry_latency_ns.Record(elapsed);
      }
      if (health_ != nullptr) health_->ReportRetryExhausted();
      return s;
    }
    const uint64_t backoff = BackoffNanos(policy_, op, attempt);
    if (stats_ != nullptr) {
      stats_->retries.Increment();
      stats_->retry_backoff_ns.Record(backoff);
    }
    {
      obs::Span retry_span("fault.retry", "fault");
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
      s = fn();
    }
    ++attempt;
    if (s.ok()) {
      if (stats_ != nullptr) {
        stats_->retry_successes.Increment();
        stats_->retry_latency_ns.Record(obs::NowNanos() - t0);
      }
      return s;
    }
  }
}

Status RetryingBlockDevice::ReadBlock(uint64_t block, uint8_t* buf) {
  return RunWithRetry(/*is_write=*/false,
                      [&] { return inner_->ReadBlock(block, buf); });
}

Status RetryingBlockDevice::WriteBlock(uint64_t block, const uint8_t* buf) {
  return RunWithRetry(/*is_write=*/true,
                      [&] { return inner_->WriteBlock(block, buf); });
}

Status RetryingBlockDevice::ReadBlocks(const BlockIoVec* iov, size_t n) {
  // The whole vectored call is the retry unit: re-reading blocks that
  // already transferred is idempotent, and a mid-batch error does not say
  // which blocks moved, so per-block resumption has nothing to anchor on.
  return RunWithRetry(/*is_write=*/false,
                      [&] { return inner_->ReadBlocks(iov, n); });
}

Status RetryingBlockDevice::WriteBlocks(const ConstBlockIoVec* iov, size_t n) {
  return RunWithRetry(/*is_write=*/true,
                      [&] { return inner_->WriteBlocks(iov, n); });
}

Status RetryingBlockDevice::Flush() {
  return RunWithRetry(/*is_write=*/true, [&] { return inner_->Flush(); });
}

Status RetryingBlockDevice::Sync() {
  // Sync is the journal's write barrier: a retried Sync that eventually
  // succeeds preserves the barrier contract (completed writes durable on
  // return); one that exhausts surfaces the fault to the commit protocol,
  // which aborts the txn.
  return RunWithRetry(/*is_write=*/true, [&] { return inner_->Sync(); });
}

}  // namespace fault
}  // namespace stegfs
