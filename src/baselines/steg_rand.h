// StegRand: Anderson, Needham & Shamir's second construction (paper [7]),
// the scheme behind McDonald & Kuhn's 1999 Linux StegFS [13], benchmarked
// as "StegRand" in section 5.
//
// A hidden file's blocks are written to ABSOLUTE device addresses produced
// by a keyed pseudorandom sequence — no bitmap, no metadata, nothing to
// observe. The fatal flaw the paper exploits: different files (and even
// replicas of the same file) can map to the same addresses and silently
// overwrite each other. Resilience comes only from writing R replicas of
// every block and hoping one survives; reads hunt through replicas until a
// MAC verifies.
//
// Each stored block is laid out as
//   [payload (block_size - 40)][u64 sequence stamp][HMAC-SHA256/32]
// with payload encrypted under the file key and the MAC binding
// (file, replica, block index), so overwritten or foreign blocks are
// detected with overwhelming probability.
#ifndef STEGFS_BASELINES_STEG_RAND_H_
#define STEGFS_BASELINES_STEG_RAND_H_

#include <memory>
#include <string>

#include "baselines/file_store.h"
#include "cache/buffer_cache.h"

namespace stegfs {

class StegRandStore : public FileStore {
 public:
  static StatusOr<std::unique_ptr<StegRandStore>> Create(
      BlockDevice* device, const FileStoreOptions& options);

  SchemeKind kind() const override { return SchemeKind::kStegRand; }
  Status WriteFile(const std::string& name, const std::string& key,
                   const std::string& data) override;
  // Hunts for an intact replica of every block; DataLoss if any block has
  // lost all replicas.
  StatusOr<std::string> ReadFile(const std::string& name,
                                 const std::string& key) override;
  Status Flush() override { return cache_->Flush(); }

  uint64_t CapacityBytes() const override {
    return device_->capacity_bytes();
  }

  uint32_t payload_bytes() const { return payload_bytes_; }
  uint32_t replication() const { return replication_; }

  // Device address of replica r of block index i of (name, key). Exposed
  // for tests and the figure-6 space simulation.
  uint64_t AddressOf(const std::string& name, const std::string& key,
                     uint32_t replica, uint64_t index) const;

  // Discards the buffer cache (models a remount; tests use it after
  // corrupting the raw device underneath).
  void DropCaches() { cache_->DropAll(); }

 private:
  StegRandStore(BlockDevice* device, const FileStoreOptions& options);

  BlockDevice* device_;
  std::unique_ptr<BufferCache> cache_;
  uint32_t block_size_;
  uint32_t payload_bytes_;
  uint32_t replication_;
};

}  // namespace stegfs

#endif  // STEGFS_BASELINES_STEG_RAND_H_
