#include "baselines/steg_cover.h"

#include <algorithm>
#include <cstring>

#include "crypto/block_crypter.h"
#include "crypto/hmac.h"
#include "crypto/keys.h"
#include "crypto/prng.h"
#include "util/coding.h"
#include "util/random.h"

namespace stegfs {

// Covers are organized into GROUPS of `cover_count` covers; a hidden file
// lives in one group and its password selects a nonzero membership mask
// over that group. Writes re-satisfy the whole group's XOR constraints by
// solving a <=16x16 GF(2) system — exactly Anderson's linear-algebra
// construction, at group granularity so a group accommodates as many files
// as it has covers while writes never corrupt co-resident files.

StegCoverStore::StegCoverStore(BlockDevice* device,
                               const FileStoreOptions& options)
    : device_(device),
      cache_(std::make_unique<BufferCache>(device, options.cache_blocks,
                                           WritePolicy::kWriteThrough)),
      block_size_(device->block_size()),
      cover_bytes_(options.cover_size_bytes),
      blocks_per_cover_(
          static_cast<uint32_t>(options.cover_size_bytes / block_size_)),
      num_covers_(device->capacity_bytes() / options.cover_size_bytes),
      cover_count_(options.cover_count) {}

StatusOr<std::unique_ptr<StegCoverStore>> StegCoverStore::Create(
    BlockDevice* device, const FileStoreOptions& options) {
  if (options.cover_size_bytes % device->block_size() != 0) {
    return Status::InvalidArgument("cover size not block aligned");
  }
  if (options.cover_count > 32) {
    return Status::InvalidArgument("cover_count > 32 unsupported");
  }
  std::unique_ptr<StegCoverStore> store(
      new StegCoverStore(device, options));
  if (store->num_covers_ < options.cover_count) {
    return Status::InvalidArgument("volume smaller than one cover group");
  }
  // Format: fill every cover block with noise so XOR embeddings are
  // indistinguishable from never-written covers.
  Xoshiro fill(options.rng_seed);
  std::vector<uint8_t> buf(store->block_size_);
  uint64_t total_blocks =
      store->num_covers_ * static_cast<uint64_t>(store->blocks_per_cover_);
  for (uint64_t b = 0; b < total_blocks; ++b) {
    fill.FillBytes(buf.data(), buf.size());
    STEGFS_RETURN_IF_ERROR(device->WriteBlock(b, buf.data()));
  }
  return store;
}

std::vector<uint32_t> StegCoverStore::SubsetFor(const std::string& name,
                                                const std::string& key) const {
  // Group index and membership mask, both password-derived.
  crypto::HashChainPrng prng(crypto::LocatorSeed(name, key), UINT64_MAX);
  uint64_t num_groups = num_covers_ / cover_count_;
  uint64_t group = prng.Next() % num_groups;
  uint32_t mask = 0;
  while (mask == 0) {
    mask = static_cast<uint32_t>(prng.Next() &
                                 ((1ULL << cover_count_) - 1));
  }
  std::vector<uint32_t> subset;
  for (uint32_t i = 0; i < cover_count_; ++i) {
    if (mask & (1u << i)) {
      subset.push_back(static_cast<uint32_t>(group * cover_count_ + i));
    }
  }
  return subset;
}

Status StegCoverStore::ReadCover(uint32_t cover, std::vector<uint8_t>* out) {
  out->resize(cover_bytes_);
  uint64_t base = static_cast<uint64_t>(cover) * blocks_per_cover_;
  for (uint32_t b = 0; b < blocks_per_cover_; ++b) {
    STEGFS_RETURN_IF_ERROR(
        cache_->Read(base + b, out->data() + b * block_size_));
  }
  return Status::OK();
}

Status StegCoverStore::WriteCover(uint32_t cover,
                                  const std::vector<uint8_t>& data) {
  uint64_t base = static_cast<uint64_t>(cover) * blocks_per_cover_;
  for (uint32_t b = 0; b < blocks_per_cover_; ++b) {
    STEGFS_RETURN_IF_ERROR(
        cache_->Write(base + b, data.data() + b * block_size_));
  }
  return Status::OK();
}

Status StegCoverStore::XorSubset(const std::vector<uint32_t>& subset,
                                 std::vector<uint8_t>* out) {
  out->assign(cover_bytes_, 0);
  // Block-round-robin across the subset: read block b of every cover, then
  // block b+1 — bounded memory, and the multi-stream access pattern the
  // paper's measurements reflect.
  std::vector<uint8_t> buf(block_size_);
  for (uint32_t b = 0; b < blocks_per_cover_; ++b) {
    for (uint32_t cover : subset) {
      uint64_t lba = static_cast<uint64_t>(cover) * blocks_per_cover_ + b;
      STEGFS_RETURN_IF_ERROR(cache_->Read(lba, buf.data()));
      uint8_t* dst = out->data() + b * block_size_;
      for (uint32_t i = 0; i < block_size_; ++i) dst[i] ^= buf[i];
    }
  }
  return Status::OK();
}

StatusOr<std::string> StegCoverStore::DecodePayload(
    const std::vector<uint8_t>& image) {
  uint32_t len = DecodeFixed32(image.data());
  if (len > cover_bytes_ - 4) {
    return Status::NotFound("no file at this name/key (bad length)");
  }
  return std::string(reinterpret_cast<const char*>(image.data() + 4), len);
}

Status StegCoverStore::WriteFile(const std::string& name,
                                 const std::string& key,
                                 const std::string& data) {
  if (4 + (data.size() + 15) / 16 * 16 + 32 > cover_bytes_) {
    return Status::InvalidArgument("file larger than a cover");
  }
  std::string physical = name + '\0' + key;
  std::vector<uint32_t> subset = SubsetFor(name, key);
  uint32_t group = subset[0] / cover_count_;
  uint32_t my_mask = 0;
  for (uint32_t c : subset) my_mask |= 1u << (c % cover_count_);

  // Target payload image: [u32 len][ciphertext][32-byte HMAC][noise pad].
  // Encrypted + MAC'd under the password so the embedded image carries no
  // structure and a wrong key is detected instead of yielding garbage.
  std::vector<uint8_t> target(cover_bytes_, 0);
  {
    std::string body = data;
    crypto::BlockCrypter crypter("stegcover:" + key);
    // Pad the body to a multiple of 16 for the block cipher.
    size_t padded = (body.size() + 15) / 16 * 16;
    body.resize(padded, '\0');
    std::vector<uint8_t> cipher(body.begin(), body.end());
    if (!cipher.empty()) {
      crypter.EncryptBlock(0, cipher.data(), cipher.size());
    }
    EncodeFixed32(target.data(), static_cast<uint32_t>(data.size()));
    std::memcpy(target.data() + 4, cipher.data(), cipher.size());
    crypto::Sha256Digest tag = crypto::HmacSha256(
        "stegcover-tag:" + key,
        std::string(cipher.begin(), cipher.end()));
    std::memcpy(target.data() + 4 + cipher.size(), tag.data(), tag.size());
    Xoshiro pad_rng(std::hash<std::string>{}(physical));
    pad_rng.FillBytes(target.data() + 4 + cipher.size() + tag.size(),
                      cover_bytes_ - 4 - cipher.size() - tag.size());
  }

  // Current XOR of our subset, to compute the delta we must inject.
  std::vector<uint8_t> current;
  STEGFS_RETURN_IF_ERROR(XorSubset(subset, &current));
  std::vector<uint8_t> delta(cover_bytes_);
  for (uint64_t i = 0; i < cover_bytes_; ++i) {
    delta[i] = current[i] ^ target[i];
  }

  // Solve for the set T of group covers to flip with `delta`:
  //   parity(T & mask_g) = 0 for every other registered file g in group,
  //   parity(T & my_mask) = 1.
  // Unknowns = cover_count_ bits; constraints = registered files + 1.
  std::vector<uint32_t> rows;   // constraint masks
  std::vector<uint32_t> rhs;    // parities
  for (const auto& [other_name, reg] : registry_) {
    if (other_name == physical) continue;
    if (reg.subset[0] / cover_count_ != group) continue;
    uint32_t m = 0;
    for (uint32_t c : reg.subset) m |= 1u << (c % cover_count_);
    rows.push_back(m);
    rhs.push_back(0);
  }
  rows.push_back(my_mask);
  rhs.push_back(1);

  // Gaussian elimination over GF(2), unknowns x (bit i = flip cover i).
  uint32_t x = 0;
  {
    std::vector<uint32_t> mat = rows;
    std::vector<uint32_t> b = rhs;
    std::vector<int> pivot_col(mat.size(), -1);
    size_t rank = 0;
    for (uint32_t col = 0; col < cover_count_ && rank < mat.size(); ++col) {
      size_t sel = rank;
      while (sel < mat.size() && !(mat[sel] & (1u << col))) ++sel;
      if (sel == mat.size()) continue;
      std::swap(mat[rank], mat[sel]);
      std::swap(b[rank], b[sel]);
      for (size_t r = 0; r < mat.size(); ++r) {
        if (r != rank && (mat[r] & (1u << col))) {
          mat[r] ^= mat[rank];
          b[r] ^= b[rank];
        }
      }
      pivot_col[rank] = static_cast<int>(col);
      ++rank;
    }
    // Inconsistent system (0 = 1 row) => the new file's mask is linearly
    // dependent on the co-residents': the group is at Anderson capacity.
    for (size_t r = rank; r < mat.size(); ++r) {
      if (mat[r] == 0 && b[r] == 1) {
        return Status::NoSpace("cover group at capacity (dependent mask)");
      }
    }
    for (size_t r = 0; r < rank; ++r) {
      if (b[r]) x |= 1u << pivot_col[r];
    }
  }

  // Apply delta to the selected covers.
  std::vector<uint8_t> cover_image;
  for (uint32_t i = 0; i < cover_count_; ++i) {
    if (!(x & (1u << i))) continue;
    uint32_t cover = group * cover_count_ + i;
    STEGFS_RETURN_IF_ERROR(ReadCover(cover, &cover_image));
    for (uint64_t k = 0; k < cover_bytes_; ++k) cover_image[k] ^= delta[k];
    STEGFS_RETURN_IF_ERROR(WriteCover(cover, cover_image));
  }

  Registered reg;
  reg.subset = subset;
  reg.length_bytes = static_cast<uint32_t>(data.size());
  registry_[physical] = reg;
  return Status::OK();
}

StatusOr<std::string> StegCoverStore::ReadFile(const std::string& name,
                                               const std::string& key) {
  std::vector<uint32_t> subset = SubsetFor(name, key);
  std::vector<uint8_t> image;
  STEGFS_RETURN_IF_ERROR(XorSubset(subset, &image));
  STEGFS_ASSIGN_OR_RETURN(std::string truncated, DecodePayload(image));
  size_t len = truncated.size();
  size_t padded = (len + 15) / 16 * 16;
  if (4 + padded + 32 > cover_bytes_) {
    return Status::NotFound("no file at this name/key (bad length)");
  }
  // Authenticate before decrypting.
  std::string cipher(reinterpret_cast<const char*>(image.data() + 4), padded);
  crypto::Sha256Digest tag = crypto::HmacSha256("stegcover-tag:" + key,
                                                cipher);
  if (std::memcmp(tag.data(), image.data() + 4 + padded, tag.size()) != 0) {
    return Status::NotFound("no file at this name/key (tag mismatch)");
  }
  if (len == 0) return std::string();
  std::vector<uint8_t> buf(cipher.begin(), cipher.end());
  crypto::BlockCrypter crypter("stegcover:" + key);
  crypter.DecryptBlock(0, buf.data(), buf.size());
  return std::string(reinterpret_cast<const char*>(buf.data()), len);
}

}  // namespace stegfs
