#include "baselines/steg_rand.h"

#include <cstring>
#include <vector>

#include "crypto/block_crypter.h"
#include "crypto/hmac.h"
#include "crypto/keys.h"
#include "crypto/prng.h"
#include "util/coding.h"

namespace stegfs {

namespace {
constexpr uint32_t kMacBytes = 32;
constexpr uint32_t kOverheadBytes = kMacBytes + 8;  // MAC + sequence stamp

crypto::Sha256Digest ChainSeed(const std::string& name,
                               const std::string& key, uint32_t replica) {
  crypto::Sha256 h;
  h.Update("stegrand-chain\0", 15);
  h.Update(name);
  h.Update("\0", 1);
  h.Update(key);
  uint8_t r[4] = {static_cast<uint8_t>(replica),
                  static_cast<uint8_t>(replica >> 8),
                  static_cast<uint8_t>(replica >> 16),
                  static_cast<uint8_t>(replica >> 24)};
  h.Update(r, 4);
  return h.Finish();
}

crypto::Sha256Digest BlockMac(const std::string& key, uint32_t replica,
                              uint64_t index, const uint8_t* cipher,
                              size_t n) {
  std::string msg;
  PutFixed32(&msg, replica);
  PutFixed64(&msg, index);
  msg.append(reinterpret_cast<const char*>(cipher), n);
  return crypto::HmacSha256("stegrand-mac:" + key, msg);
}

}  // namespace

StegRandStore::StegRandStore(BlockDevice* device,
                             const FileStoreOptions& options)
    : device_(device),
      cache_(std::make_unique<BufferCache>(device, options.cache_blocks,
                                           WritePolicy::kWriteThrough)),
      block_size_(device->block_size()),
      payload_bytes_(block_size_ - kOverheadBytes),
      replication_(options.replication) {}

StatusOr<std::unique_ptr<StegRandStore>> StegRandStore::Create(
    BlockDevice* device, const FileStoreOptions& options) {
  if (options.replication == 0) {
    return Status::InvalidArgument("replication factor must be >= 1");
  }
  if (device->block_size() <= kOverheadBytes + 16) {
    return Status::InvalidArgument("block size too small for StegRand");
  }
  return std::unique_ptr<StegRandStore>(
      new StegRandStore(device, options));
}

uint64_t StegRandStore::AddressOf(const std::string& name,
                                  const std::string& key, uint32_t replica,
                                  uint64_t index) const {
  crypto::HashChainPrng prng(ChainSeed(name, key, replica),
                             device_->num_blocks());
  uint64_t addr = 0;
  for (uint64_t i = 0; i <= index; ++i) addr = prng.Next();
  return addr;
}

Status StegRandStore::WriteFile(const std::string& name,
                                const std::string& key,
                                const std::string& data) {
  // Stream = [u64 length][data], chunked into payload-sized pieces.
  std::string stream;
  PutFixed64(&stream, data.size());
  stream += data;
  uint64_t nblocks = (stream.size() + payload_bytes_ - 1) / payload_bytes_;

  // One address chain per replica, advanced in lockstep.
  std::vector<crypto::HashChainPrng> chains;
  chains.reserve(replication_);
  for (uint32_t r = 0; r < replication_; ++r) {
    chains.emplace_back(ChainSeed(name, key, r), device_->num_blocks());
  }

  crypto::BlockCrypter crypter("stegrand:" + key);
  std::vector<uint8_t> block(block_size_);
  for (uint64_t i = 0; i < nblocks; ++i) {
    // Payload chunk, zero-padded.
    std::vector<uint8_t> payload(payload_bytes_, 0);
    size_t off = i * payload_bytes_;
    size_t take = std::min<size_t>(payload_bytes_, stream.size() - off);
    std::memcpy(payload.data(), stream.data() + off, take);

    for (uint32_t r = 0; r < replication_; ++r) {
      uint64_t addr = chains[r].Next();
      // Encrypt with a (replica, index)-unique tweak so replicas don't
      // produce identical ciphertext at different addresses.
      std::vector<uint8_t> cipher = payload;
      // Pad the cipher region to a 16-byte multiple inside the block.
      size_t cipher_len = payload_bytes_ / 16 * 16;
      crypter.EncryptBlock((static_cast<uint64_t>(r) << 40) | i,
                           cipher.data(), cipher_len);
      std::memcpy(block.data(), cipher.data(), payload_bytes_);
      EncodeFixed64(block.data() + payload_bytes_, i);
      crypto::Sha256Digest mac =
          BlockMac(key, r, i, cipher.data(), payload_bytes_);
      std::memcpy(block.data() + payload_bytes_ + 8, mac.data(), mac.size());
      STEGFS_RETURN_IF_ERROR(cache_->Write(addr, block.data()));
    }
  }
  return Status::OK();
}

StatusOr<std::string> StegRandStore::ReadFile(const std::string& name,
                                              const std::string& key) {
  std::vector<crypto::HashChainPrng> chains;
  chains.reserve(replication_);
  for (uint32_t r = 0; r < replication_; ++r) {
    chains.emplace_back(ChainSeed(name, key, r), device_->num_blocks());
  }

  crypto::BlockCrypter crypter("stegrand:" + key);
  std::vector<uint8_t> block(block_size_);
  std::string stream;
  uint64_t expected_len = 0;
  bool have_len = false;
  uint64_t nblocks = UINT64_MAX;

  for (uint64_t i = 0; i < nblocks; ++i) {
    bool recovered = false;
    for (uint32_t r = 0; r < replication_; ++r) {
      uint64_t addr = chains[r].Next();
      if (recovered) continue;  // keep chains in lockstep
      STEGFS_RETURN_IF_ERROR(cache_->Read(addr, block.data()));
      crypto::Sha256Digest mac =
          BlockMac(key, r, i, block.data(), payload_bytes_);
      if (std::memcmp(mac.data(), block.data() + payload_bytes_ + 8,
                      mac.size()) != 0) {
        continue;  // overwritten or foreign: hunt the next replica
      }
      std::vector<uint8_t> payload(block.data(),
                                   block.data() + payload_bytes_);
      size_t cipher_len = payload_bytes_ / 16 * 16;
      crypter.DecryptBlock((static_cast<uint64_t>(r) << 40) | i,
                           payload.data(), cipher_len);
      stream.append(reinterpret_cast<const char*>(payload.data()),
                    payload.size());
      recovered = true;
    }
    if (!recovered) {
      if (i == 0) {
        return Status::NotFound(
            "no intact first block: file absent or destroyed");
      }
      return Status::DataLoss("all replicas of block " + std::to_string(i) +
                              " were overwritten");
    }
    if (!have_len) {
      Decoder dec(reinterpret_cast<const uint8_t*>(stream.data()),
                  stream.size());
      if (!dec.GetFixed64(&expected_len)) {
        return Status::Corruption("short first block");
      }
      have_len = true;
      if (expected_len > device_->capacity_bytes()) {
        return Status::NotFound("implausible length: wrong key?");
      }
      nblocks = (8 + expected_len + payload_bytes_ - 1) / payload_bytes_;
    }
  }
  return stream.substr(8, expected_len);
}

}  // namespace stegfs
