// StegRandIda: the random-placement scheme with Rabin's Information
// Dispersal Algorithm instead of replication — Hand & Roscoe's Mnemosyne
// refinement discussed in the paper's related work (section 2):
//
//   "by replacing simple replication with the information dispersal
//    algorithm (IDA) ... a file owner chooses two numbers m <= n and
//    encodes the hidden file into n cipher-blocks such that any m of them
//    suffice to reconstruct the hidden file. However, this is achieved at
//    the expense of higher storage and read/write overheads, and there is
//    still the possibility of data loss."
//
// Placement is identical to StegRand (keyed pseudorandom absolute
// addresses, no metadata); resilience differs: every stripe of m payload
// blocks becomes n coded blocks, and the stripe survives as long as any m
// of them do. Storage blow-up is n/m; reads hunt for m intact (MAC-valid)
// fragments per stripe; data loss occurs only when n-m+1 fragments of one
// stripe are overwritten.
#ifndef STEGFS_BASELINES_STEG_RAND_IDA_H_
#define STEGFS_BASELINES_STEG_RAND_IDA_H_

#include <memory>
#include <string>

#include "baselines/file_store.h"
#include "cache/buffer_cache.h"

namespace stegfs {

class StegRandIdaStore : public FileStore {
 public:
  // Uses options.ida_m / options.ida_n.
  static StatusOr<std::unique_ptr<StegRandIdaStore>> Create(
      BlockDevice* device, const FileStoreOptions& options);

  SchemeKind kind() const override { return SchemeKind::kStegRandIda; }
  Status WriteFile(const std::string& name, const std::string& key,
                   const std::string& data) override;
  StatusOr<std::string> ReadFile(const std::string& name,
                                 const std::string& key) override;
  Status Flush() override { return cache_->Flush(); }
  uint64_t CapacityBytes() const override {
    return device_->capacity_bytes();
  }

  int m() const { return m_; }
  int n() const { return n_; }
  uint32_t payload_bytes() const { return payload_bytes_; }

  // Device address of fragment `share` of stripe `stripe` (for tests).
  uint64_t AddressOf(const std::string& name, const std::string& key,
                     int share, uint64_t stripe) const;

  // Drops the buffer cache (tests corrupt the raw device underneath).
  void DropCaches() { cache_->DropAll(); }

 private:
  StegRandIdaStore(BlockDevice* device, const FileStoreOptions& options);

  BlockDevice* device_;
  std::unique_ptr<BufferCache> cache_;
  uint32_t block_size_;
  uint32_t payload_bytes_;
  int m_;
  int n_;
};

}  // namespace stegfs

#endif  // STEGFS_BASELINES_STEG_RAND_IDA_H_
