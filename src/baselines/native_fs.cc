#include "baselines/native_fs.h"

namespace stegfs {

StatusOr<std::unique_ptr<NativeStore>> NativeStore::Create(
    BlockDevice* device, const FileStoreOptions& options, bool fragmented) {
  FormatOptions fo;
  STEGFS_RETURN_IF_ERROR(PlainFs::Format(device, fo));
  MountOptions mo;
  mo.policy =
      fragmented ? AllocPolicy::kFragmented8 : AllocPolicy::kContiguous;
  mo.cache_blocks = options.cache_blocks;
  mo.write_policy = WritePolicy::kWriteThrough;
  mo.rng_seed = options.rng_seed;
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<PlainFs> fs,
                          PlainFs::Mount(device, mo));
  return std::unique_ptr<NativeStore>(
      new NativeStore(std::move(fs), fragmented));
}

Status NativeStore::WriteFile(const std::string& name, const std::string& key,
                              const std::string& data) {
  (void)key;  // the native FS offers no protection — that is the point
  return fs_->WriteFile(PathFor(name), data);
}

StatusOr<std::string> NativeStore::ReadFile(const std::string& name,
                                            const std::string& key) {
  (void)key;
  return fs_->ReadFile(PathFor(name));
}

Status NativeStore::DeleteFile(const std::string& name,
                               const std::string& key) {
  (void)key;
  return fs_->Unlink(PathFor(name));
}

}  // namespace stegfs
