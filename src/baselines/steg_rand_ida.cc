#include "baselines/steg_rand_ida.h"

#include <cstring>
#include <vector>

#include "crypto/block_crypter.h"
#include "crypto/gf256.h"
#include "crypto/hmac.h"
#include "crypto/prng.h"
#include "util/coding.h"

namespace stegfs {

namespace {
constexpr uint32_t kMacBytes = 32;
constexpr uint32_t kOverheadBytes = kMacBytes + 8;  // MAC + stripe stamp

crypto::Sha256Digest ChainSeed(const std::string& name,
                               const std::string& key, int share) {
  crypto::Sha256 h;
  h.Update("stegrand-ida-chain\0", 19);
  h.Update(name);
  h.Update("\0", 1);
  h.Update(key);
  uint8_t s[4] = {static_cast<uint8_t>(share),
                  static_cast<uint8_t>(share >> 8),
                  static_cast<uint8_t>(share >> 16),
                  static_cast<uint8_t>(share >> 24)};
  h.Update(s, 4);
  return h.Finish();
}

crypto::Sha256Digest FragmentMac(const std::string& key, int share,
                                 uint64_t stripe, const uint8_t* cipher,
                                 size_t len) {
  std::string msg;
  PutFixed32(&msg, static_cast<uint32_t>(share));
  PutFixed64(&msg, stripe);
  msg.append(reinterpret_cast<const char*>(cipher), len);
  return crypto::HmacSha256("stegrand-ida-mac:" + key, msg);
}

}  // namespace

StegRandIdaStore::StegRandIdaStore(BlockDevice* device,
                                   const FileStoreOptions& options)
    : device_(device),
      cache_(std::make_unique<BufferCache>(device, options.cache_blocks,
                                           WritePolicy::kWriteThrough)),
      block_size_(device->block_size()),
      payload_bytes_(block_size_ - kOverheadBytes),
      m_(options.ida_m),
      n_(options.ida_n) {}

StatusOr<std::unique_ptr<StegRandIdaStore>> StegRandIdaStore::Create(
    BlockDevice* device, const FileStoreOptions& options) {
  if (options.ida_m < 1 || options.ida_n < options.ida_m ||
      options.ida_n > 255) {
    return Status::InvalidArgument("need 1 <= m <= n <= 255");
  }
  if (device->block_size() <= kOverheadBytes + 16) {
    return Status::InvalidArgument("block size too small for StegRandIda");
  }
  return std::unique_ptr<StegRandIdaStore>(
      new StegRandIdaStore(device, options));
}

uint64_t StegRandIdaStore::AddressOf(const std::string& name,
                                     const std::string& key, int share,
                                     uint64_t stripe) const {
  crypto::HashChainPrng prng(ChainSeed(name, key, share),
                             device_->num_blocks());
  uint64_t addr = 0;
  for (uint64_t i = 0; i <= stripe; ++i) addr = prng.Next();
  return addr;
}

Status StegRandIdaStore::WriteFile(const std::string& name,
                                   const std::string& key,
                                   const std::string& data) {
  std::string stream;
  PutFixed64(&stream, data.size());
  stream += data;
  uint64_t payload_blocks =
      (stream.size() + payload_bytes_ - 1) / payload_bytes_;
  uint64_t stripes = (payload_blocks + m_ - 1) / m_;

  std::vector<crypto::HashChainPrng> chains;
  chains.reserve(n_);
  for (int f = 0; f < n_; ++f) {
    chains.emplace_back(ChainSeed(name, key, f), device_->num_blocks());
  }

  crypto::BlockCrypter crypter("stegrand-ida:" + key);
  std::vector<uint8_t> device_block(block_size_);
  const size_t cipher_len = payload_bytes_ / 16 * 16;

  for (uint64_t s = 0; s < stripes; ++s) {
    // Gather the stripe's m payload blocks (zero-padded past the end).
    std::vector<std::vector<uint8_t>> blocks(
        m_, std::vector<uint8_t>(payload_bytes_, 0));
    for (int j = 0; j < m_; ++j) {
      uint64_t idx = s * m_ + j;
      size_t off = idx * payload_bytes_;
      if (off < stream.size()) {
        size_t take =
            std::min<size_t>(payload_bytes_, stream.size() - off);
        std::memcpy(blocks[j].data(), stream.data() + off, take);
      }
    }
    std::vector<std::vector<uint8_t>> shares =
        crypto::IdaEncodeStripe(blocks, n_);
    for (int f = 0; f < n_; ++f) {
      uint64_t addr = chains[f].Next();
      // Encrypt with a (share, stripe)-unique tweak, then MAC.
      crypter.EncryptBlock((static_cast<uint64_t>(f) << 40) | s,
                           shares[f].data(), cipher_len);
      std::memcpy(device_block.data(), shares[f].data(), payload_bytes_);
      EncodeFixed64(device_block.data() + payload_bytes_, s);
      crypto::Sha256Digest mac =
          FragmentMac(key, f, s, shares[f].data(), payload_bytes_);
      std::memcpy(device_block.data() + payload_bytes_ + 8, mac.data(),
                  mac.size());
      STEGFS_RETURN_IF_ERROR(cache_->Write(addr, device_block.data()));
    }
  }
  return Status::OK();
}

StatusOr<std::string> StegRandIdaStore::ReadFile(const std::string& name,
                                                 const std::string& key) {
  std::vector<crypto::HashChainPrng> chains;
  chains.reserve(n_);
  for (int f = 0; f < n_; ++f) {
    chains.emplace_back(ChainSeed(name, key, f), device_->num_blocks());
  }

  crypto::BlockCrypter crypter("stegrand-ida:" + key);
  std::vector<uint8_t> device_block(block_size_);
  const size_t cipher_len = payload_bytes_ / 16 * 16;
  std::string stream;
  uint64_t expected_len = 0;
  bool have_len = false;
  uint64_t stripes = UINT64_MAX;

  for (uint64_t s = 0; s < stripes; ++s) {
    std::vector<std::pair<uint8_t, std::vector<uint8_t>>> intact;
    for (int f = 0; f < n_; ++f) {
      uint64_t addr = chains[f].Next();
      if (static_cast<int>(intact.size()) >= m_) continue;  // lockstep
      STEGFS_RETURN_IF_ERROR(cache_->Read(addr, device_block.data()));
      crypto::Sha256Digest mac =
          FragmentMac(key, f, s, device_block.data(), payload_bytes_);
      if (std::memcmp(mac.data(),
                      device_block.data() + payload_bytes_ + 8,
                      mac.size()) != 0) {
        continue;  // overwritten or foreign
      }
      std::vector<uint8_t> fragment(device_block.data(),
                                    device_block.data() + payload_bytes_);
      crypter.DecryptBlock((static_cast<uint64_t>(f) << 40) | s,
                           fragment.data(), cipher_len);
      intact.emplace_back(static_cast<uint8_t>(f), std::move(fragment));
    }
    if (static_cast<int>(intact.size()) < m_) {
      if (s == 0) {
        return Status::NotFound(
            "no reconstructible first stripe: file absent or destroyed");
      }
      return Status::DataLoss("stripe " + std::to_string(s) +
                              " has fewer than m intact fragments");
    }
    STEGFS_ASSIGN_OR_RETURN(std::vector<std::vector<uint8_t>> blocks,
                            crypto::IdaDecodeStripe(intact, m_));
    for (const auto& b : blocks) {
      stream.append(reinterpret_cast<const char*>(b.data()), b.size());
    }
    if (!have_len) {
      Decoder dec(reinterpret_cast<const uint8_t*>(stream.data()),
                  stream.size());
      if (!dec.GetFixed64(&expected_len)) {
        return Status::Corruption("short first stripe");
      }
      have_len = true;
      if (expected_len > device_->capacity_bytes()) {
        return Status::NotFound("implausible length: wrong key?");
      }
      uint64_t payload_blocks =
          (8 + expected_len + payload_bytes_ - 1) / payload_bytes_;
      stripes = (payload_blocks + m_ - 1) / m_;
    }
  }
  return stream.substr(8, expected_len);
}

}  // namespace stegfs
