// StegCover: Anderson, Needham & Shamir's first steganographic file system
// construction (paper [7], benchmarked as "StegCover" in section 5).
//
// The volume is divided into fixed-size cover files initialized with random
// noise. A hidden file is the XOR of a password-selected subset of covers
// (16 here, per the authors' recommendation). Reading XORs the subset's
// covers block-round-robin; writing re-satisfies the subset's XOR
// constraint by flipping a solved combination of the group's covers.
//
// The scheme's intrinsic hazard — a naive carrier rewrite corrupts any
// co-resident file whose subset contains that cover — is handled with
// Anderson's own linear-algebra construction at cover-GROUP granularity:
// writes solve a small GF(2) system so the delta lands only on cover
// combinations orthogonal to every other registered file's constraint.
// Correct for all co-residents, Anderson-capacity (n files per n covers),
// and the write cost (~reads of the group + ~half its covers rewritten)
// shows up in the benchmarks honestly.
#ifndef STEGFS_BASELINES_STEG_COVER_H_
#define STEGFS_BASELINES_STEG_COVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/file_store.h"
#include "cache/buffer_cache.h"

namespace stegfs {

class StegCoverStore : public FileStore {
 public:
  static StatusOr<std::unique_ptr<StegCoverStore>> Create(
      BlockDevice* device, const FileStoreOptions& options);

  SchemeKind kind() const override { return SchemeKind::kStegCover; }
  Status WriteFile(const std::string& name, const std::string& key,
                   const std::string& data) override;
  StatusOr<std::string> ReadFile(const std::string& name,
                                 const std::string& key) override;
  Status Flush() override { return cache_->Flush(); }

  // One file per cover on average ("it can accommodate as many objects as
  // there are cover files"); utilization bound = avg file / cover size.
  uint64_t CapacityBytes() const override {
    return num_covers_ * cover_bytes_;
  }

  uint64_t num_covers() const { return num_covers_; }
  // Password-derived cover subset (exposed for tests).
  std::vector<uint32_t> SubsetFor(const std::string& name,
                                  const std::string& key) const;

 private:
  StegCoverStore(BlockDevice* device, const FileStoreOptions& options);

  struct Registered {
    std::vector<uint32_t> subset;
    uint32_t length_bytes;  // stored payload length (with size prefix)
  };

  // Reads/writes whole covers block-by-block.
  Status ReadCover(uint32_t cover, std::vector<uint8_t>* out);
  Status WriteCover(uint32_t cover, const std::vector<uint8_t>& data);
  // XOR of the covers in `subset`, round-robin by block (bounded memory in
  // a real system; here it also produces the seek-heavy access pattern the
  // paper measured).
  Status XorSubset(const std::vector<uint32_t>& subset,
                   std::vector<uint8_t>* out);

  // Payload codec: [u32 length][data][zero pad to cover size].
  StatusOr<std::string> DecodePayload(const std::vector<uint8_t>& cover_image);

  BlockDevice* device_;
  std::unique_ptr<BufferCache> cache_;
  uint32_t block_size_;
  uint64_t cover_bytes_;
  uint32_t blocks_per_cover_;
  uint64_t num_covers_;
  uint32_t cover_count_;  // covers per file subset (16)
  std::map<std::string, Registered> registry_;  // physical name -> info
};

}  // namespace stegfs

#endif  // STEGFS_BASELINES_STEG_COVER_H_
