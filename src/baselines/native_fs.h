// Native-FS comparison points (paper Table 4):
//   CleanDisk - "freshly defragmented Linux file system": PlainFs with
//               contiguous allocation, files laid out in runs.
//   FragDisk  - "well-used Linux file system with fragmentation ...
//               simulated by breaking each file into fragments of 8
//               blocks": PlainFs with the 8-block-fragment allocator.
// These bound what any protection scheme can achieve (no hiding, no
// crypto); the paper's claim is that StegFS converges to them under
// multi-user load.
#ifndef STEGFS_BASELINES_NATIVE_FS_H_
#define STEGFS_BASELINES_NATIVE_FS_H_

#include <memory>
#include <string>

#include "baselines/file_store.h"
#include "fs/plain_fs.h"

namespace stegfs {

class NativeStore : public FileStore {
 public:
  // `fragmented` selects FragDisk; otherwise CleanDisk.
  static StatusOr<std::unique_ptr<NativeStore>> Create(
      BlockDevice* device, const FileStoreOptions& options, bool fragmented);

  SchemeKind kind() const override {
    return fragmented_ ? SchemeKind::kFragDisk : SchemeKind::kCleanDisk;
  }
  Status WriteFile(const std::string& name, const std::string& key,
                   const std::string& data) override;
  StatusOr<std::string> ReadFile(const std::string& name,
                                 const std::string& key) override;
  Status DeleteFile(const std::string& name, const std::string& key) override;
  Status Flush() override { return fs_->Flush(); }

  uint64_t CapacityBytes() const override {
    return fs_->layout().data_blocks() * fs_->layout().block_size;
  }

  PlainFs* fs() { return fs_.get(); }

 private:
  NativeStore(std::unique_ptr<PlainFs> fs, bool fragmented)
      : fs_(std::move(fs)), fragmented_(fragmented) {}

  static std::string PathFor(const std::string& name) { return "/" + name; }

  std::unique_ptr<PlainFs> fs_;
  bool fragmented_;
};

}  // namespace stegfs

#endif  // STEGFS_BASELINES_NATIVE_FS_H_
