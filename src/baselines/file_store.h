// FileStore: the uniform facade over the five comparison systems of the
// paper's Table 4, so the workload simulator and benchmarks can drive any
// of them interchangeably:
//
//   kCleanDisk  - native FS, freshly defragmented (contiguous allocation)
//   kFragDisk   - native FS, well-used (8-block fragments)
//   kStegCover  - Anderson/Needham/Shamir scheme 1: XOR of 16 cover files
//   kStegRand   - Anderson scheme 2: pseudorandom absolute addresses with
//                 replication (the McDonald/Kuhn StegFS lineage)
//   kStegFs     - this paper's scheme
#ifndef STEGFS_BASELINES_FILE_STORE_H_
#define STEGFS_BASELINES_FILE_STORE_H_

#include <memory>
#include <string>

#include "blockdev/block_device.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

enum class SchemeKind {
  kCleanDisk,
  kFragDisk,
  kStegCover,
  kStegRand,
  kStegFs,
  // Extension (paper section 2, Hand & Roscoe): random placement with
  // Rabin IDA instead of replication. Not part of Table 4's five systems.
  kStegRandIda,
};

const char* SchemeName(SchemeKind kind);

struct FileStoreOptions {
  // Buffer cache blocks (kept small in benchmarks so device traces are
  // complete; the drive-level cache lives in DiskModel).
  size_t cache_blocks = 256;
  // StegCover: number of cover files XORed per hidden file ("16 cover
  // files as recommended by the authors").
  uint32_t cover_count = 16;
  uint64_t cover_size_bytes = 2 << 20;  // covers must fit the largest file
  // StegRand: replication factor ("a replication factor of 4 is used ...
  // according to the authors' recommendation").
  uint32_t replication = 4;
  // StegRandIda: any ida_m of ida_n coded fragments reconstruct a stripe.
  int ida_m = 4;
  int ida_n = 8;
  // Deterministic seeds.
  uint64_t rng_seed = 0x46535452;
};

class FileStore {
 public:
  virtual ~FileStore() = default;

  virtual SchemeKind kind() const = 0;

  // Stores `data` under (name, key), replacing any previous content.
  virtual Status WriteFile(const std::string& name, const std::string& key,
                           const std::string& data) = 0;
  virtual StatusOr<std::string> ReadFile(const std::string& name,
                                         const std::string& key) = 0;
  virtual Status DeleteFile(const std::string& name, const std::string& key) {
    (void)name;
    (void)key;
    return Status::NotSupported("delete not supported by this scheme");
  }
  virtual Status Flush() = 0;

  // Bytes of unique user data this store can hold (scheme-dependent; used
  // by the space-utilization experiments).
  virtual uint64_t CapacityBytes() const = 0;
};

// Builds a store of the given kind over `device`. For kCleanDisk/kFragDisk/
// kStegFs the device is formatted first; kStegCover/kStegRand use the raw
// device directly (those schemes have no file-system metadata at all).
StatusOr<std::unique_ptr<FileStore>> CreateFileStore(
    SchemeKind kind, BlockDevice* device, const FileStoreOptions& options);

}  // namespace stegfs

#endif  // STEGFS_BASELINES_FILE_STORE_H_
