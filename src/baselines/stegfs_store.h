// StegFsStore: the paper's scheme behind the common FileStore interface.
//
// For benchmark parity with the other stores this adapter drives
// HiddenObject directly with the caller's key as the FAK — the measured
// I/O is the hidden-file mechanism itself (keyed header probing, random
// block placement, free-pool churn, encrypted blocks), matching what the
// paper's "StegFS" curves measure. The UAK-directory bookkeeping layer
// (StegFs facade) sits above this and costs one extra hidden-file update
// per create/share, not per read/write.
#ifndef STEGFS_BASELINES_STEGFS_STORE_H_
#define STEGFS_BASELINES_STEGFS_STORE_H_

#include <map>
#include <memory>
#include <string>

#include "baselines/file_store.h"
#include "core/stegfs.h"

namespace stegfs {

class StegFsStore : public FileStore {
 public:
  static StatusOr<std::unique_ptr<StegFsStore>> Create(
      BlockDevice* device, const FileStoreOptions& options);

  SchemeKind kind() const override { return SchemeKind::kStegFs; }
  Status WriteFile(const std::string& name, const std::string& key,
                   const std::string& data) override;
  StatusOr<std::string> ReadFile(const std::string& name,
                                 const std::string& key) override;
  Status DeleteFile(const std::string& name, const std::string& key) override;
  Status Flush() override;

  uint64_t CapacityBytes() const override {
    const Layout& l = fs_->plain()->layout();
    return l.data_blocks() * l.block_size;
  }

  StegFs* fs() { return fs_.get(); }

 private:
  explicit StegFsStore(std::unique_ptr<StegFs> fs) : fs_(std::move(fs)) {}

  StatusOr<HiddenObject*> GetOrOpen(const std::string& name,
                                    const std::string& key);

  std::unique_ptr<StegFs> fs_;
  // Open handles, keyed by (name, key): repeated ops skip re-probing, like
  // a connected session would.
  std::map<std::pair<std::string, std::string>, std::unique_ptr<HiddenObject>>
      handles_;
};

}  // namespace stegfs

#endif  // STEGFS_BASELINES_STEGFS_STORE_H_
