#include "baselines/file_store.h"

#include "baselines/native_fs.h"
#include "baselines/steg_cover.h"
#include "baselines/steg_rand.h"
#include "baselines/steg_rand_ida.h"
#include "baselines/stegfs_store.h"

namespace stegfs {

const char* SchemeName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kCleanDisk:
      return "CleanDisk";
    case SchemeKind::kFragDisk:
      return "FragDisk";
    case SchemeKind::kStegCover:
      return "StegCover";
    case SchemeKind::kStegRand:
      return "StegRand";
    case SchemeKind::kStegFs:
      return "StegFS";
    case SchemeKind::kStegRandIda:
      return "StegRandIDA";
  }
  return "Unknown";
}

StatusOr<std::unique_ptr<FileStore>> CreateFileStore(
    SchemeKind kind, BlockDevice* device, const FileStoreOptions& options) {
  switch (kind) {
    case SchemeKind::kCleanDisk: {
      STEGFS_ASSIGN_OR_RETURN(
          std::unique_ptr<NativeStore> store,
          NativeStore::Create(device, options, /*fragmented=*/false));
      return std::unique_ptr<FileStore>(std::move(store));
    }
    case SchemeKind::kFragDisk: {
      STEGFS_ASSIGN_OR_RETURN(
          std::unique_ptr<NativeStore> store,
          NativeStore::Create(device, options, /*fragmented=*/true));
      return std::unique_ptr<FileStore>(std::move(store));
    }
    case SchemeKind::kStegCover: {
      STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<StegCoverStore> store,
                              StegCoverStore::Create(device, options));
      return std::unique_ptr<FileStore>(std::move(store));
    }
    case SchemeKind::kStegRand: {
      STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<StegRandStore> store,
                              StegRandStore::Create(device, options));
      return std::unique_ptr<FileStore>(std::move(store));
    }
    case SchemeKind::kStegFs: {
      STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<StegFsStore> store,
                              StegFsStore::Create(device, options));
      return std::unique_ptr<FileStore>(std::move(store));
    }
    case SchemeKind::kStegRandIda: {
      STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<StegRandIdaStore> store,
                              StegRandIdaStore::Create(device, options));
      return std::unique_ptr<FileStore>(std::move(store));
    }
  }
  return Status::InvalidArgument("unknown scheme kind");
}

}  // namespace stegfs
