#include "baselines/stegfs_store.h"

namespace stegfs {

StatusOr<std::unique_ptr<StegFsStore>> StegFsStore::Create(
    BlockDevice* device, const FileStoreOptions& options) {
  StegFormatOptions fo;
  fo.entropy = "stegfs-store:" + std::to_string(options.rng_seed);
  STEGFS_RETURN_IF_ERROR(StegFs::Format(device, fo));
  StegFsOptions so;
  so.mount.cache_blocks = options.cache_blocks;
  so.mount.write_policy = WritePolicy::kWriteThrough;
  so.steg_rng_seed = options.rng_seed;
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<StegFs> fs,
                          StegFs::Mount(device, so));
  return std::unique_ptr<StegFsStore>(new StegFsStore(std::move(fs)));
}

StatusOr<HiddenObject*> StegFsStore::GetOrOpen(const std::string& name,
                                               const std::string& key) {
  auto it = handles_.find({name, key});
  if (it != handles_.end()) return it->second.get();
  auto opened = HiddenObject::Open(fs_->VolumeCtx(), name, key);
  if (!opened.ok()) return opened.status();
  HiddenObject* raw = opened->get();
  handles_[{name, key}] = std::move(opened).value();
  return raw;
}

Status StegFsStore::WriteFile(const std::string& name, const std::string& key,
                              const std::string& data) {
  auto existing = GetOrOpen(name, key);
  HiddenObject* obj = nullptr;
  if (existing.ok()) {
    obj = existing.value();
  } else if (existing.status().IsNotFound()) {
    STEGFS_ASSIGN_OR_RETURN(
        std::unique_ptr<HiddenObject> created,
        HiddenObject::Create(fs_->VolumeCtx(), name, key, HiddenType::kFile));
    obj = created.get();
    handles_[{name, key}] = std::move(created);
  } else {
    return existing.status();
  }
  STEGFS_RETURN_IF_ERROR(obj->WriteAll(data));
  STEGFS_RETURN_IF_ERROR(obj->Sync());
  return fs_->plain()->PersistMeta();
}

StatusOr<std::string> StegFsStore::ReadFile(const std::string& name,
                                            const std::string& key) {
  STEGFS_ASSIGN_OR_RETURN(HiddenObject * obj, GetOrOpen(name, key));
  return obj->ReadAll();
}

Status StegFsStore::DeleteFile(const std::string& name,
                               const std::string& key) {
  STEGFS_ASSIGN_OR_RETURN(HiddenObject * obj, GetOrOpen(name, key));
  Status s = obj->Remove();
  handles_.erase({name, key});
  STEGFS_RETURN_IF_ERROR(s);
  return fs_->plain()->PersistMeta();
}

Status StegFsStore::Flush() {
  for (auto& [k, obj] : handles_) {
    STEGFS_RETURN_IF_ERROR(obj->Sync());
  }
  return fs_->Flush();
}

}  // namespace stegfs
