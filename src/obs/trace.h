// stegtrace spans: per-operation trace contexts that survive async
// completion hops, recorded into a fixed-size in-memory ring and
// exportable as Chrome trace-event JSON (load in Perfetto / about:tracing).
//
// Model: one ROOT span per logical operation (a PlainFs mutating op, a
// hidden read/write). The root owns an op_id; every nested Span on the
// same thread becomes a child automatically (thread-local context), and
// code that crosses threads — the async engines' completion callbacks,
// the EncryptedBlockStore pipeline — captures CurrentSpanContext() at
// submission and constructs the continuation Span from it explicitly, so
// a completion running on an engine thread still lands in the right
// operation's tree. That explicit hand-off is also what makes "exactly
// one root span per op" hold under completion races: completions never
// open roots, they only continue.
//
// The ring is fixed-size and wraps (newest events win; `dropped()` counts
// what wrapping discarded). Recording takes a mutex — spans close once
// per operation phase, not per block, so the lock is off every per-block
// hot path — and nothing here ever reaches the block device: traces are
// process memory only, same deniability rule as the metrics registry.
//
// Slow-op log: give the recorder a threshold and any ROOT span exceeding
// it dumps its whole tree (indented, durations in µs) to stderr the
// moment it closes — the "why was that one write 80ms" answer without
// exporting anything.
#ifndef STEGFS_OBS_TRACE_H_
#define STEGFS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace stegfs {
namespace obs {

// One closed span. name/cat must be string literals (never freed).
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  uint64_t op_id = 0;       // root operation this span belongs to
  uint64_t span_id = 0;     // unique per span
  uint64_t parent_span = 0; // 0 = root
  uint64_t start_ns = 0;    // NowNanos() at open
  uint64_t dur_ns = 0;
  uint32_t tid = 0;         // small sequential thread id
};

class TraceRecorder {
 public:
  // Capacity is rounded up to a power of two; default 8192 events.
  explicit TraceRecorder(size_t capacity = 8192);

  // Arms/disarms recording. Span construction is inert while stopped, so
  // the steady-state cost of an idle recorder is one relaxed load.
  void Start() { enabled_.store(true, std::memory_order_release); }
  void Stop() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const {
    return enabled_.load(std::memory_order_acquire) && MetricsEnabled();
  }

  // Root spans longer than this dump their tree to stderr (0 = off).
  void set_slow_op_threshold_ns(uint64_t ns) {
    slow_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t slow_op_threshold_ns() const {
    return slow_ns_.load(std::memory_order_relaxed);
  }

  // Called by Span on close (and by tests directly).
  void Record(const TraceEvent& ev);

  uint64_t recorded() const;  // total events ever recorded
  uint64_t dropped() const;   // events the ring wrap discarded
  uint64_t NextOpId() { return next_op_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t NextSpanId() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  // Events currently in the ring, oldest first.
  std::vector<TraceEvent> Events() const;

  // Chrome trace-event JSON ({"traceEvents": [...]}, "X" complete events,
  // timestamps/durations in microseconds). Perfetto-loadable.
  std::string ExportChromeJson() const;

  // The span tree of one operation, indented, durations in µs. Used by
  // the slow-op log and directly testable.
  std::string DumpOpTree(uint64_t op_id) const;

  // Drops all recorded events (counters too). Start/stop state unchanged.
  void Clear();

 private:
  void MaybeDumpSlowOp(const TraceEvent& root);

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  uint64_t next_ = 0;  // total recorded; ring slot = next_ & mask
  size_t mask_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> slow_ns_{0};
  std::atomic<uint64_t> next_op_{1};
  std::atomic<uint64_t> next_span_{1};
};

// The ambient span of the calling thread (what a child Span nests under,
// and what async submitters capture to hand to their completions).
struct SpanContext {
  TraceRecorder* recorder = nullptr;
  uint64_t op_id = 0;
  uint64_t span_id = 0;
  bool active() const { return recorder != nullptr; }
};
SpanContext CurrentSpanContext();

// RAII span. Three forms:
//   Span(recorder, name, cat)  - op entry point: roots a new operation on
//                                `recorder` (or nests, if this thread is
//                                already inside one of the same recorder).
//   Span(name, cat)            - child of the thread's current span;
//                                fully inert when there is none.
//   Span(parent_ctx, name, cat)- cross-thread continuation (completion
//                                callbacks): child of `parent_ctx`,
//                                whatever thread it runs on.
// While alive, the span is the thread's current context; destruction
// records the event and restores the previous context.
class Span {
 public:
  Span(TraceRecorder* recorder, const char* name, const char* cat);
  Span(const char* name, const char* cat);
  Span(const SpanContext& parent, const char* name, const char* cat);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // The context to hand to a completion callback (equals
  // CurrentSpanContext() while this span is the newest on the thread).
  SpanContext context() const;
  bool active() const { return rec_ != nullptr; }

  // Records the span now instead of at destruction (idempotent). Used
  // when a phase ends mid-scope — the next sibling span must not nest
  // under a phase that is already over.
  void Close();

 private:
  void Open(TraceRecorder* rec, uint64_t op, uint64_t parent,
            const char* name, const char* cat);

  TraceRecorder* rec_ = nullptr;
  SpanContext prev_;
  const char* name_ = "";
  const char* cat_ = "";
  uint64_t op_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_ = 0;
  uint64_t t0_ = 0;
};

// Small sequential id of the calling thread (stable for its lifetime).
uint32_t CurrentTid();

}  // namespace obs
}  // namespace stegfs

#endif  // STEGFS_OBS_TRACE_H_
