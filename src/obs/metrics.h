// stegtrace metrics: the unified, deniability-preserving observability
// registry (PR 7).
//
// Everything here lives ONLY in process memory. No instrument, snapshot,
// or exposition ever touches the block device: a volume image must be
// bit-identical whether observability ran or not (the obs deniability
// test proves it). That constraint is why this is a bespoke layer rather
// than a dependency — nothing may be persisted, and nothing may allocate
// on the record path of a hot loop.
//
// Three pieces:
//
//   Counter   - a relaxed atomic u64. Writers never synchronize; readers
//               get a point-in-time value. The building block that
//               replaces the five scattered stat structs (CacheStats,
//               DeviceBatchStats, AsyncIoStats, JournalStats,
//               RedundancyStats) with ONE instrument type.
//   Histogram - a log-linear latency histogram (HdrHistogram bucketing:
//               8 sub-buckets per power of two, <= 12.5% relative error),
//               all-atomic so any number of threads record concurrently
//               and a snapshot from one thread merges them for free.
//               Snapshots are value types that Merge() exactly — the
//               cross-thread-merge test pins merge ≡ single-thread.
//   MetricsRegistry - a directory of named instruments. Components own
//               their instruments (so unit tests see them without any
//               registry); a mount registers them under stable Prometheus
//               names. Snapshot() reads every instrument once into a
//               value object — steg_stats() fills its struct from that
//               one snapshot instead of re-reading live atomics per
//               field, which is the torn-snapshot fix.
//
// Recording cost when enabled is one clock_gettime + one relaxed
// fetch_add per histogram sample; when disabled (SetMetricsEnabled(false)
// or STEGFS_OBS=0 in the environment) the timer helpers skip the clock
// entirely. The obs-overhead CI job holds enabled-mode bench throughput
// within 3% of disabled.
#ifndef STEGFS_OBS_METRICS_H_
#define STEGFS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace stegfs {
namespace obs {

// Process-wide observability switch (metrics AND trace timers). Reads the
// STEGFS_OBS environment variable once at first use: unset or "1" = on.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

// Monotonic nanoseconds (steady clock).
uint64_t NowNanos();

// A lock-free monotonic counter. load() is kept alongside value() so the
// atomics it replaced (RedundancyStats et al.) stay source-compatible.
class Counter {
 public:
  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  uint64_t load() const { return value(); }
  // Test/bench reset; never used on a live scrape path.
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Log-linear bucket geometry, shared by Histogram and its snapshot.
// Values are nanoseconds, clamped to < 2^40 ns (~18 minutes).
struct HistogramBuckets {
  static constexpr int kSubBits = 3;                // 8 sub-buckets/octave
  static constexpr uint64_t kSub = 1ull << kSubBits;
  static constexpr int kMaxOctave = 40;
  static constexpr size_t kCount =
      kSub + static_cast<size_t>(kMaxOctave - kSubBits) * kSub;

  static uint64_t ClampValue(uint64_t v) {
    const uint64_t max = (1ull << kMaxOctave) - 1;
    return v > max ? max : v;
  }

  // Index of the bucket holding `v` (after clamping). Buckets [0, 8)
  // hold exact values 0..7; each further octave splits into 8 linear
  // sub-buckets, so the relative bucket width is <= 1/8.
  static size_t IndexOf(uint64_t v) {
    v = ClampValue(v);
    if (v < kSub) return static_cast<size_t>(v);
    const int octave = 63 - __builtin_clzll(v);
    return static_cast<size_t>(octave - kSubBits + 1) * kSub +
           static_cast<size_t>((v >> (octave - kSubBits)) - kSub);
  }

  // Largest value that lands in bucket `idx` (inclusive).
  static uint64_t UpperBound(size_t idx) {
    if (idx < kSub) return idx;
    const size_t u = idx / kSub;
    const size_t r = idx % kSub;
    const int octave = static_cast<int>(u) - 1 + kSubBits;
    return ((kSub + r + 1) << (octave - kSubBits)) - 1;
  }
};

// Value-type snapshot of one histogram; mergeable and percentile-capable.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;  // nanoseconds
  uint64_t max = 0;
  std::array<uint64_t, HistogramBuckets::kCount> buckets{};

  // Exact merge: recording N samples on one thread and snapshotting
  // equals recording them across threads and merging the snapshots.
  void Merge(const HistogramSnapshot& other) {
    count += other.count;
    sum += other.sum;
    if (other.max > max) max = other.max;
    for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  }

  // Quantile in [0, 1]. Returns the upper bound of the bucket containing
  // the q-th sample, clamped to the exact observed max (so Percentile(1)
  // == max). 0 when empty.
  uint64_t Percentile(double q) const;
  double MeanNanos() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

// Thread-safe latency histogram. Record() is wait-free (relaxed atomics
// only); Snapshot() reads each cell once.
class Histogram {
 public:
  void Record(uint64_t nanos) {
    nanos = HistogramBuckets::ClampValue(nanos);
    buckets_[HistogramBuckets::IndexOf(nanos)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(nanos, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < nanos &&
           !max_.compare_exchange_weak(prev, nanos,
                                       std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, HistogramBuckets::kCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// RAII latency sample: records destruction-time elapsed nanos into `h`.
// When observability is disabled (or `h` is null) it never reads the
// clock — the whole thing collapses to two branches.
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram* h)
      : h_(h != nullptr && MetricsEnabled() ? h : nullptr),
        t0_(h_ != nullptr ? NowNanos() : 0) {}
  ~LatencyTimer() { Stop(); }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;
  // Records the sample now instead of at destruction (idempotent).
  void Stop() {
    if (h_ != nullptr) h_->Record(NowNanos() - t0_);
    h_ = nullptr;
  }
  void Cancel() { h_ = nullptr; }

 private:
  Histogram* h_;
  uint64_t t0_;
};

// One consistent read of every registered instrument. steg_stats() and
// steg_metrics_text() are built from this — no live-atomic re-reads
// between fields, so derived values (hit rates) are self-consistent.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  const HistogramSnapshot* histogram(const std::string& name) const {
    auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : &it->second;
  }
};

// A directory of named instruments. The registry does NOT own them:
// components keep their instruments (unit tests use them registry-free)
// and a mount registers pointers under stable names. Registration and
// scraping are mutex-guarded; instrument updates never are. Instruments
// must outlive every scrape — PlainFs owns its registry and registers
// only objects the mount owns, and unmount is single-threaded by the C
// API contract, so nothing scrapes a dying volume.
class MetricsRegistry {
 public:
  void RegisterCounter(const std::string& name, const std::string& help,
                       const Counter* c);
  void RegisterHistogram(const std::string& name, const std::string& help,
                         const Histogram* h);
  void Unregister(const std::string& name);

  RegistrySnapshot Snapshot() const;

  // Prometheus exposition format (text/plain; version 0.0.4). Counters as
  // `# TYPE c counter`; histograms as `_bucket{le="<seconds>"}` series
  // (non-empty buckets only — a legal subset — plus +Inf), `_sum` and
  // `_count`, with nanoseconds converted to base-unit seconds.
  std::string TextExposition() const;

 private:
  struct CounterEntry {
    std::string help;
    const Counter* counter;
  };
  struct HistogramEntry {
    std::string help;
    const Histogram* histogram;
  };
  mutable std::mutex mu_;
  std::map<std::string, CounterEntry> counters_;
  std::map<std::string, HistogramEntry> histograms_;
};

// Process-wide registry for instruments that are global by nature (the
// AES/GF tier pipelines are process-wide singletons). Volume-scoped
// instruments belong in the mount's own registry.
MetricsRegistry& GlobalRegistry();

// Global crypto-pipeline instruments (registered in GlobalRegistry on
// first use): batch encrypt/decrypt latency + block counts.
struct CryptoMetrics {
  Histogram encrypt_ns;
  Histogram decrypt_ns;
  Counter blocks_encrypted;
  Counter blocks_decrypted;

  // The crypter is stateless and process-wide, so these instruments are
  // too; per-mount registries re-register the same pointers so one
  // exposition covers the whole data path.
  void RegisterWith(MetricsRegistry* reg) const {
    reg->RegisterHistogram("stegfs_crypto_encrypt_seconds",
                           "Batch encrypt latency", &encrypt_ns);
    reg->RegisterHistogram("stegfs_crypto_decrypt_seconds",
                           "Batch decrypt latency", &decrypt_ns);
    reg->RegisterCounter("stegfs_crypto_blocks_encrypted_total",
                         "Blocks encrypted", &blocks_encrypted);
    reg->RegisterCounter("stegfs_crypto_blocks_decrypted_total",
                         "Blocks decrypted", &blocks_decrypted);
  }
};
CryptoMetrics& GlobalCryptoMetrics();

}  // namespace obs
}  // namespace stegfs

#endif  // STEGFS_OBS_METRICS_H_
