#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace stegfs {
namespace obs {

namespace {

thread_local SpanContext t_ctx;

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

uint32_t CurrentTid() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

SpanContext CurrentSpanContext() { return t_ctx; }

TraceRecorder::TraceRecorder(size_t capacity) {
  const size_t cap = RoundUpPow2(capacity < 2 ? 2 : capacity);
  ring_.resize(cap);
  mask_ = cap - 1;
}

void TraceRecorder::Record(const TraceEvent& ev) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_[next_ & mask_] = ev;
    ++next_;
  }
  if (ev.parent_span == 0) MaybeDumpSlowOp(ev);
}

uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ > ring_.size() ? next_ - ring_.size() : 0;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  const uint64_t n = std::min<uint64_t>(next_, ring_.size());
  out.reserve(n);
  for (uint64_t i = next_ - n; i < next_; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  return out;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
}

std::string TraceRecorder::ExportChromeJson() const {
  std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char line[320];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(
        line, sizeof(line),
        "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"op\":%llu,"
        "\"span\":%llu,\"parent\":%llu}}",
        i == 0 ? "" : ",", e.name, e.cat,
        static_cast<double>(e.start_ns) / 1e3,
        static_cast<double>(e.dur_ns) / 1e3, e.tid,
        static_cast<unsigned long long>(e.op_id),
        static_cast<unsigned long long>(e.span_id),
        static_cast<unsigned long long>(e.parent_span));
    out += line;
  }
  out += "]}";
  return out;
}

std::string TraceRecorder::DumpOpTree(uint64_t op_id) const {
  std::vector<TraceEvent> events = Events();
  std::vector<const TraceEvent*> ops;
  for (const TraceEvent& e : events) {
    if (e.op_id == op_id) ops.push_back(&e);
  }
  std::sort(ops.begin(), ops.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              return a->start_ns < b->start_ns;
            });
  // Depth = length of the parent chain still present in the ring.
  auto depth_of = [&ops](const TraceEvent* e) {
    int depth = 0;
    uint64_t parent = e->parent_span;
    while (parent != 0 && depth < 16) {
      const TraceEvent* up = nullptr;
      for (const TraceEvent* c : ops) {
        if (c->span_id == parent) up = c;
      }
      if (up == nullptr) break;
      ++depth;
      parent = up->parent_span;
    }
    return depth;
  };
  std::string out;
  char line[256];
  for (const TraceEvent* e : ops) {
    std::snprintf(line, sizeof(line), "%*s%s [%s] %.1f us (tid %u)\n",
                  depth_of(e) * 2, "", e->name, e->cat,
                  static_cast<double>(e->dur_ns) / 1e3, e->tid);
    out += line;
  }
  return out;
}

void TraceRecorder::MaybeDumpSlowOp(const TraceEvent& root) {
  const uint64_t thr = slow_ns_.load(std::memory_order_relaxed);
  if (thr == 0 || root.dur_ns < thr) return;
  std::string tree = DumpOpTree(root.op_id);
  std::fprintf(stderr,
               "stegtrace: slow op %llu (%s, %.1f us >= %.1f us):\n%s",
               static_cast<unsigned long long>(root.op_id), root.name,
               static_cast<double>(root.dur_ns) / 1e3,
               static_cast<double>(thr) / 1e3, tree.c_str());
}

void Span::Open(TraceRecorder* rec, uint64_t op, uint64_t parent,
                const char* name, const char* cat) {
  rec_ = rec;
  name_ = name;
  cat_ = cat;
  op_id_ = op;
  span_id_ = rec->NextSpanId();
  parent_span_ = parent;
  t0_ = NowNanos();
  prev_ = t_ctx;
  t_ctx = SpanContext{rec_, op_id_, span_id_};
}

Span::Span(TraceRecorder* recorder, const char* name, const char* cat) {
  if (recorder == nullptr || !recorder->enabled()) return;
  // Nest if this thread is already inside an operation of the same
  // recorder (a mutating op called from another traced op); root
  // otherwise.
  if (t_ctx.recorder == recorder) {
    Open(recorder, t_ctx.op_id, t_ctx.span_id, name, cat);
  } else {
    Open(recorder, recorder->NextOpId(), 0, name, cat);
  }
}

Span::Span(const char* name, const char* cat) {
  if (t_ctx.recorder == nullptr || !t_ctx.recorder->enabled()) return;
  Open(t_ctx.recorder, t_ctx.op_id, t_ctx.span_id, name, cat);
}

Span::Span(const SpanContext& parent, const char* name, const char* cat) {
  if (parent.recorder == nullptr || !parent.recorder->enabled()) return;
  Open(parent.recorder, parent.op_id, parent.span_id, name, cat);
}

Span::~Span() { Close(); }

void Span::Close() {
  if (rec_ == nullptr) return;
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.op_id = op_id_;
  ev.span_id = span_id_;
  ev.parent_span = parent_span_;
  ev.start_ns = t0_;
  ev.dur_ns = NowNanos() - t0_;
  ev.tid = CurrentTid();
  t_ctx = prev_;
  rec_->Record(ev);
  rec_ = nullptr;
}

SpanContext Span::context() const {
  if (rec_ == nullptr) return SpanContext{};
  return SpanContext{rec_, op_id_, span_id_};
}

}  // namespace obs
}  // namespace stegfs
