#include "obs/metrics.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace stegfs {
namespace obs {

namespace {

std::atomic<bool>& EnabledFlag() {
  // First use reads STEGFS_OBS so benches and CI can A/B the overhead
  // without a rebuild: unset or anything but "0" means on.
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("STEGFS_OBS");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

}  // namespace

bool MetricsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based: ceil(q * count), at least 1.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= rank) {
      const uint64_t upper = HistogramBuckets::UpperBound(i);
      return upper > max ? max : upper;
    }
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const std::string& help,
                                      const Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] = CounterEntry{help, c};
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const std::string& help,
                                        const Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name] = HistogramEntry{help, h};
}

void MetricsRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.erase(name);
  histograms_.erase(name);
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, entry] : counters_) {
    snap.counters[name] = entry.counter->value();
  }
  for (const auto& [name, entry] : histograms_) {
    snap.histograms[name] = entry.histogram->Snapshot();
  }
  return snap;
}

std::string MetricsRegistry::TextExposition() const {
  // Take help strings under the lock, values via one snapshot.
  std::map<std::string, std::string> counter_help;
  std::map<std::string, std::string> histogram_help;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : counters_) {
      counter_help[name] = entry.help;
    }
    for (const auto& [name, entry] : histograms_) {
      histogram_help[name] = entry.help;
    }
  }
  RegistrySnapshot snap = Snapshot();
  std::string out;
  out.reserve(4096);
  char line[256];
  for (const auto& [name, value] : snap.counters) {
    out += "# HELP " + name + " " + counter_help[name] + "\n";
    out += "# TYPE " + name + " counter\n";
    std::snprintf(line, sizeof(line), "%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, hist] : snap.histograms) {
    out += "# HELP " + name + " " + histogram_help[name] + "\n";
    out += "# TYPE " + name + " histogram\n";
    uint64_t cum = 0;
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0) continue;
      cum += hist.buckets[i];
      std::snprintf(line, sizeof(line), "%s_bucket{le=\"%.9g\"} %llu\n",
                    name.c_str(),
                    static_cast<double>(HistogramBuckets::UpperBound(i)) /
                        1e9,
                    static_cast<unsigned long long>(cum));
      out += line;
    }
    std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %llu\n",
                  name.c_str(), static_cast<unsigned long long>(hist.count));
    out += line;
    std::snprintf(line, sizeof(line), "%s_sum %.9g\n", name.c_str(),
                  static_cast<double>(hist.sum) / 1e9);
    out += line;
    std::snprintf(line, sizeof(line), "%s_count %llu\n", name.c_str(),
                  static_cast<unsigned long long>(hist.count));
    out += line;
  }
  return out;
}

MetricsRegistry& GlobalRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

CryptoMetrics& GlobalCryptoMetrics() {
  static CryptoMetrics* metrics = [] {
    auto* m = new CryptoMetrics();
    m->RegisterWith(&GlobalRegistry());
    return m;
  }();
  return *metrics;
}

}  // namespace obs
}  // namespace stegfs
