#include "capi/steg_api.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "blockdev/file_block_device.h"
#include "core/backup.h"
#include "core/stegfs.h"
#include "crypto/aes.h"
#include "crypto/gf256_simd.h"
#include "crypto/rsa.h"
#include "fault/fault_injection_device.h"

using stegfs::Status;
using stegfs::StatusCode;

struct stegfs_volume {
  std::unique_ptr<stegfs::BlockDevice> device;
  // steg_mount_faulty mounts only: the injection layer above `device`.
  // Declared after it (destroyed first), before fs (destroyed after it).
  std::unique_ptr<stegfs::fault::FaultInjectionBlockDevice> fault_device;
  std::unique_ptr<stegfs::StegFs> fs;
};

namespace {

// Per-thread, so concurrent failures on one handle cannot clobber each
// other's messages (steg_strerror's documented contract).
thread_local std::string t_last_error;

int CodeOf(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk:
      return STEG_OK;
    case StatusCode::kNotFound:
      return STEG_ERR_NOT_FOUND;
    case StatusCode::kCorruption:
      return STEG_ERR_CORRUPTION;
    case StatusCode::kInvalidArgument:
      return STEG_ERR_INVALID;
    case StatusCode::kIOError:
      return STEG_ERR_IO;
    case StatusCode::kAlreadyExists:
      return STEG_ERR_EXISTS;
    case StatusCode::kNoSpace:
      return STEG_ERR_NOSPACE;
    case StatusCode::kPermissionDenied:
      return STEG_ERR_DENIED;
    case StatusCode::kDataLoss:
      return STEG_ERR_DATALOSS;
    case StatusCode::kNotSupported:
      return STEG_ERR_UNSUPPORTED;
    case StatusCode::kFailedPrecondition:
      return STEG_ERR_PRECONDITION;
  }
  return STEG_ERR_INVALID;
}

int Fail(stegfs_volume* vol, const Status& s) {
  (void)vol;
  if (!s.ok()) t_last_error = s.ToString();
  return CodeOf(s);
}

// Reads/writes whole host files (for backup images).
Status ReadHostFile(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return Status::IOError("cannot open host file");
  char buf[1 << 16];
  size_t n;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return Status::OK();
}

Status WriteHostFile(const char* path, const std::string& data) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) return Status::IOError("cannot create host file");
  size_t n = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (n != data.size()) return Status::IOError("short write to host file");
  return Status::OK();
}

}  // namespace

extern "C" {

int steg_mkfs(const char* image_path, uint32_t block_size,
              uint64_t num_blocks) {
  auto device =
      stegfs::FileBlockDevice::Create(image_path, block_size, num_blocks);
  if (!device.ok()) return CodeOf(device.status());
  stegfs::StegFormatOptions options;
  options.entropy = std::string("capi:") + image_path;
  // C API volumes get a journal region so mounts run crash-consistent
  // (64 blocks ≈ 256 KiB at the default 4 KiB block size).
  options.journal_blocks = 64;
  Status s = stegfs::StegFs::Format(device->get(), options);
  return CodeOf(s);
}

namespace {

// The shared mount policy of every C API handle: async engine, readahead,
// durable when the volume has a ring (falling back otherwise).
stegfs::StatusOr<std::unique_ptr<stegfs::StegFs>> MountOn(
    stegfs::BlockDevice* device) {
  stegfs::StegFsOptions options;
  // C API mounts sit on a real host file: attach the async engine
  // (io_uring when the kernel has it, thread-pool fallback otherwise) so
  // hidden extents pipeline decrypt with in-flight device I/O, and
  // request a 16-block readahead window — one default shared with the
  // benches instead of the old 8-here/16-there split (the sweep behind
  // the choice lives in BENCH_io.json / docs/ARCHITECTURE.md
  // "Readahead"). On single-core hosts the window degrades to off,
  // observably via steg_stats readahead_active/readahead_window.
  options.mount.io_engine = stegfs::IoEngine::kAuto;
  options.mount.readahead_blocks = 16;
  // Durable by default; volumes formatted before the journal existed
  // carry no ring, so fall back to the historical non-durable mount.
  options.mount.durability = stegfs::Durability::kJournal;
  auto fs = stegfs::StegFs::Mount(device, options);
  if (!fs.ok() && fs.status().IsFailedPrecondition()) {
    options.mount.durability = stegfs::Durability::kNone;
    fs = stegfs::StegFs::Mount(device, options);
  }
  return fs;
}

}  // namespace

int steg_mount(const char* image_path, uint32_t block_size,
               stegfs_volume** out) {
  if (out == nullptr) return STEG_ERR_INVALID;
  auto device = stegfs::FileBlockDevice::Open(image_path, block_size);
  if (!device.ok()) return CodeOf(device.status());
  auto vol = std::make_unique<stegfs_volume>();
  vol->device = std::move(device).value();
  auto fs = MountOn(vol->device.get());
  if (!fs.ok()) return CodeOf(fs.status());
  vol->fs = std::move(fs).value();
  *out = vol.release();
  return STEG_OK;
}

int steg_mount_faulty(const char* image_path, uint32_t block_size,
                      const char* fault_spec, stegfs_volume** out) {
  if (out == nullptr) return STEG_ERR_INVALID;
  auto device = stegfs::FileBlockDevice::Open(image_path, block_size);
  if (!device.ok()) return CodeOf(device.status());
  auto vol = std::make_unique<stegfs_volume>();
  vol->device = std::move(device).value();
  vol->fault_device =
      std::make_unique<stegfs::fault::FaultInjectionBlockDevice>(
          vol->device.get());
  if (fault_spec != nullptr && fault_spec[0] != '\0') {
    Status s = vol->fault_device->LoadSchedule(fault_spec);
    if (!s.ok()) {
      t_last_error = s.ToString();
      return CodeOf(s);
    }
  }
  auto fs = MountOn(vol->fault_device.get());
  if (!fs.ok()) return CodeOf(fs.status());
  vol->fs = std::move(fs).value();
  *out = vol.release();
  return STEG_OK;
}

int steg_fault_inject(stegfs_volume* vol, const char* fault_spec) {
  if (vol == nullptr || vol->fault_device == nullptr) return STEG_ERR_INVALID;
  if (fault_spec == nullptr || fault_spec[0] == '\0') {
    vol->fault_device->ClearRules();
    return STEG_OK;
  }
  Status s = vol->fault_device->LoadSchedule(fault_spec);
  if (!s.ok()) t_last_error = s.ToString();
  return CodeOf(s);
}

int steg_unmount(stegfs_volume* vol) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  Status s = vol->fs->Flush();
  // fs must die before the devices it points into, injection layer
  // before the raw device underneath it.
  vol->fs.reset();
  vol->fault_device.reset();
  vol->device.reset();
  delete vol;
  return CodeOf(s);
}

const char* steg_strerror(stegfs_volume* vol) {
  (void)vol;
  return t_last_error.c_str();
}

int steg_stats(stegfs_volume* vol, stegfs_stats* out) {
  if (vol == nullptr || out == nullptr) return STEG_ERR_INVALID;
  stegfs::PlainFs* plain = vol->fs->plain();
  // ONE consistent snapshot of every cumulative counter of the volume —
  // the old field-by-field component reads could tear (hits from before a
  // burst, misses from after it). Gauges and the space report are
  // inherently point-in-time and stay separate.
  stegfs::obs::RegistrySnapshot snap = plain->metrics_registry()->Snapshot();
  stegfs::SpaceReport sr = vol->fs->ReportSpace();
  out->cache_hits = snap.counter("stegfs_cache_hits_total");
  out->cache_misses = snap.counter("stegfs_cache_misses_total");
  out->cache_evictions = snap.counter("stegfs_cache_evictions_total");
  out->cache_writebacks = snap.counter("stegfs_cache_writebacks_total");
  const uint64_t lookups = out->cache_hits + out->cache_misses;
  out->cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(out->cache_hits) /
                         static_cast<double>(lookups);
  out->block_size = sr.block_size;
  out->total_blocks = sr.total_blocks;
  out->metadata_blocks = sr.metadata_blocks;
  out->allocated_blocks = sr.allocated_blocks;
  out->free_blocks = sr.free_blocks;
  out->plain_file_bytes = sr.plain_file_bytes;
  out->cache_batched_reads = snap.counter("stegfs_cache_batched_reads_total");
  out->cache_batched_writes =
      snap.counter("stegfs_cache_batched_writes_total");
  out->cache_prefetched = snap.counter("stegfs_cache_prefetched_total");
  out->cache_prefetch_hits =
      snap.counter("stegfs_cache_prefetch_hits_total");
  out->dev_vectored_blocks =
      snap.counter("stegfs_device_vectored_blocks_total");
  out->dev_coalesced_runs =
      snap.counter("stegfs_device_coalesced_runs_total");
  out->crypto_tier = stegfs::crypto::AesTierName();
  out->io_engine = plain->io_engine_name();
  out->io_submitted_batches =
      snap.counter("stegfs_async_submitted_batches_total");
  out->io_completed_batches =
      snap.counter("stegfs_async_completed_batches_total");
  out->io_fixed_buffer_ops =
      snap.counter("stegfs_async_fixed_buffer_ops_total");
  out->io_fixed_buffer_read_ops =
      snap.counter("stegfs_async_fixed_buffer_read_ops_total");
  out->io_inflight_blocks =
      plain->io_engine() != nullptr
          ? plain->io_engine()->stats().inflight_blocks
          : 0;
  out->readahead_active = plain->readahead_blocks() > 0 ? 1 : 0;
  out->readahead_window = plain->readahead_blocks();
  out->durability = plain->durable() ? "journal" : "none";
  out->journal_records =
      snap.counter("stegfs_journal_records_committed_total");
  out->journal_blocks_logged =
      snap.counter("stegfs_journal_blocks_journaled_total");
  out->journal_barrier_syncs =
      snap.counter("stegfs_journal_barrier_syncs_total");
  out->journal_overflows =
      snap.counter("stegfs_journal_overflow_fallbacks_total");
  out->journal_recovered_records = plain->recovery_report().records_replayed;
  out->journal_group_txns = snap.counter("stegfs_journal_group_txns_total");
  out->journal_group_batches =
      snap.counter("stegfs_journal_group_batches_total");
  out->journal_group_merged_blocks =
      snap.counter("stegfs_journal_group_merged_blocks_total");
  out->cache_dirty_epoch = plain->cache()->dirty_epoch();
  out->cache_dirty_blocks = plain->cache()->dirty_count();
  out->gf_tier = stegfs::crypto::GfTierName();
  out->red_stripes_encoded = snap.counter("stegfs_red_stripes_encoded_total");
  out->red_shares_written = snap.counter("stegfs_red_shares_written_total");
  out->red_degraded_reads = snap.counter("stegfs_red_degraded_reads_total");
  out->red_shares_healed = snap.counter("stegfs_red_shares_healed_total");
  out->red_verify_failures =
      snap.counter("stegfs_red_verify_failures_total");
  out->health = plain->health()->state_name();
  out->fault_transient_errors =
      snap.counter("stegfs_fault_transient_errors_total");
  out->fault_retries = snap.counter("stegfs_fault_retries_total");
  out->fault_retry_exhausted =
      snap.counter("stegfs_fault_retry_exhausted_total");
  return STEG_OK;
}

namespace {

// Copies `s` into a malloc'd buffer for a C caller (steg_buffer_free).
int CopyOutBuffer(const std::string& s, char** out, size_t* out_len) {
  char* buf = static_cast<char*>(std::malloc(s.size() + 1));
  if (buf == nullptr) return STEG_ERR_NOSPACE;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  *out = buf;
  if (out_len != nullptr) *out_len = s.size();
  return STEG_OK;
}

}  // namespace

int steg_metrics_text(stegfs_volume* vol, char** out, size_t* out_len) {
  if (vol == nullptr || out == nullptr) return STEG_ERR_INVALID;
  return CopyOutBuffer(
      vol->fs->plain()->metrics_registry()->TextExposition(), out, out_len);
}

int steg_trace_start(stegfs_volume* vol) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  vol->fs->plain()->trace_recorder()->Start();
  return STEG_OK;
}

int steg_trace_stop(stegfs_volume* vol) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  vol->fs->plain()->trace_recorder()->Stop();
  return STEG_OK;
}

int steg_trace_export(stegfs_volume* vol, char** out, size_t* out_len) {
  if (vol == nullptr || out == nullptr) return STEG_ERR_INVALID;
  return CopyOutBuffer(
      vol->fs->plain()->trace_recorder()->ExportChromeJson(), out, out_len);
}

void steg_buffer_free(char* buf) { std::free(buf); }

void steg_obs_set_enabled(int enabled) {
  stegfs::obs::SetMetricsEnabled(enabled != 0);
}

int steg_obs_enabled(void) {
  return stegfs::obs::MetricsEnabled() ? 1 : 0;
}

int steg_fsck(stegfs_volume* vol, stegfs_fsck_report* out) {
  if (vol == nullptr || out == nullptr) return STEG_ERR_INVALID;
  stegfs::journal::FsckReport report;
  Status s = vol->fs->Fsck(&report);
  if (!s.ok()) return Fail(vol, s);
  out->referenced_blocks = report.referenced_blocks;
  out->unaccounted_blocks = report.unaccounted_blocks;
  out->repaired_refs = report.repaired_refs;
  out->journal_live_records = report.journal_live_records;
  out->journal_scrubbed_blocks = report.journal_scrubbed_blocks;
  out->hidden_objects_scanned = report.hidden_objects_scanned;
  out->hidden_stripes_checked = report.hidden_stripes_checked;
  out->hidden_degraded_stripes = report.hidden_degraded_stripes;
  out->hidden_healed_shares = report.hidden_healed_shares;
  out->hidden_unrecoverable_stripes = report.hidden_unrecoverable_stripes;
  out->clean = report.clean ? 1 : 0;
  return STEG_OK;
}

int steg_health(stegfs_volume* vol, stegfs_health* out) {
  if (vol == nullptr || out == nullptr) return STEG_ERR_INVALID;
  stegfs::PlainFs* plain = vol->fs->plain();
  stegfs::fault::HealthMonitor* health = plain->health();
  stegfs::fault::FaultStats* fs = plain->fault_stats();
  out->state = static_cast<int>(health->state());
  out->state_name = health->state_name();
  out->degraded_transitions = health->degraded_transitions();
  out->readonly_transitions = health->readonly_transitions();
  out->rejected_writes = health->rejected_writes();
  out->transient_errors = fs->transient_errors.value();
  out->persistent_errors = fs->persistent_errors.value();
  out->corruption_errors = fs->corruption_errors.value();
  out->timeout_errors = fs->timeout_errors.value();
  out->retries = fs->retries.value();
  out->retry_successes = fs->retry_successes.value();
  out->retry_exhausted = fs->retry_exhausted.value();
  out->faults_injected =
      vol->fault_device != nullptr ? vol->fault_device->faults_injected() : 0;
  return STEG_OK;
}

int steg_health_reset(stegfs_volume* vol) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  vol->fs->plain()->health()->Reset();
  return STEG_OK;
}

int steg_create(stegfs_volume* vol, const char* uid, const char* objname,
                const char* uak, char objtype) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  stegfs::HiddenType type;
  if (objtype == STEG_TYPE_FILE) {
    type = stegfs::HiddenType::kFile;
  } else if (objtype == STEG_TYPE_DIR) {
    type = stegfs::HiddenType::kDirectory;
  } else {
    return Fail(vol, Status::InvalidArgument("objtype must be 'f' or 'd'"));
  }
  return Fail(vol, vol->fs->StegCreate(uid, objname, uak, type));
}

int steg_create_redundant(stegfs_volume* vol, const char* uid,
                          const char* objname, const char* uak, char objtype,
                          uint32_t policy) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  stegfs::HiddenType type;
  if (objtype == STEG_TYPE_FILE) {
    type = stegfs::HiddenType::kFile;
  } else if (objtype == STEG_TYPE_DIR) {
    type = stegfs::HiddenType::kDirectory;
  } else {
    return Fail(vol, Status::InvalidArgument("objtype must be 'f' or 'd'"));
  }
  stegfs::RedundancyPolicy red;
  const uint32_t kind = policy >> 24;
  const uint8_t k = static_cast<uint8_t>(policy >> 8);
  const uint8_t n = static_cast<uint8_t>(policy);
  if (kind == 1) {
    red = stegfs::RedundancyPolicy::Replicate(n);
  } else if (kind == 2) {
    red = stegfs::RedundancyPolicy::Ida(k, n);
  } else if (policy != 0) {
    return Fail(vol, Status::InvalidArgument("unknown redundancy policy"));
  }
  if (red.enabled() && !red.Valid()) {
    return Fail(vol, Status::InvalidArgument("invalid redundancy policy"));
  }
  return Fail(vol, vol->fs->StegCreate(uid, objname, uak, type, red));
}

int steg_hide(stegfs_volume* vol, const char* uid, const char* pathname,
              const char* objname, const char* uak) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  return Fail(vol, vol->fs->StegHide(uid, pathname, objname, uak));
}

int steg_unhide(stegfs_volume* vol, const char* uid, const char* pathname,
                const char* objname, const char* uak) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  return Fail(vol, vol->fs->StegUnhide(uid, pathname, objname, uak));
}

int steg_connect(stegfs_volume* vol, const char* uid, const char* objname,
                 const char* uak) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  return Fail(vol, vol->fs->StegConnect(uid, objname, uak));
}

int steg_disconnect(stegfs_volume* vol, const char* uid,
                    const char* objname) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  return Fail(vol, vol->fs->StegDisconnect(uid, objname));
}

int steg_getentry(stegfs_volume* vol, const char* uid, const char* objname,
                  const char* uak, const char* entryfile,
                  const uint8_t* pubkey, size_t pubkey_len) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  auto key = stegfs::crypto::RsaPublicKey::Deserialize(
      std::string(reinterpret_cast<const char*>(pubkey), pubkey_len));
  if (!key.ok()) return Fail(vol, key.status());
  return Fail(vol, vol->fs->StegGetEntry(uid, objname, uak, entryfile,
                                         key.value(),
                                         std::string("capi-share:") + uid +
                                             ":" + objname));
}

int steg_addentry(stegfs_volume* vol, const char* uid,
                  const char* entryfile, const uint8_t* privkey,
                  size_t privkey_len, const char* uak) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  auto key = stegfs::crypto::RsaPrivateKey::Deserialize(
      std::string(reinterpret_cast<const char*>(privkey), privkey_len));
  if (!key.ok()) return Fail(vol, key.status());
  return Fail(vol, vol->fs->StegAddEntry(uid, entryfile, key.value(), uak));
}

int steg_backup(stegfs_volume* vol, const char* backupfile) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  auto image = stegfs::StegBackup(vol->fs.get());
  if (!image.ok()) return Fail(vol, image.status());
  return Fail(vol, WriteHostFile(backupfile, image.value()));
}

int steg_recovery(const char* image_path, uint32_t block_size,
                  uint64_t num_blocks, const char* backupfile) {
  std::string image;
  Status s = ReadHostFile(backupfile, &image);
  if (!s.ok()) return CodeOf(s);
  auto device =
      stegfs::FileBlockDevice::Create(image_path, block_size, num_blocks);
  if (!device.ok()) return CodeOf(device.status());
  return CodeOf(stegfs::StegRecover(device->get(), image));
}

int steg_hidden_write(stegfs_volume* vol, const char* uid,
                      const char* objname, const void* data, size_t len) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  return Fail(vol,
              vol->fs->HiddenWriteAll(
                  uid, objname,
                  std::string(static_cast<const char*>(data), len)));
}

int steg_hidden_read(stegfs_volume* vol, const char* uid,
                     const char* objname, void* buf, size_t cap,
                     size_t* out_len) {
  if (vol == nullptr || out_len == nullptr) return STEG_ERR_INVALID;
  auto data = vol->fs->HiddenReadAll(uid, objname);
  if (!data.ok()) return Fail(vol, data.status());
  size_t n = std::min(cap, data->size());
  std::memcpy(buf, data->data(), n);
  *out_len = n;
  return STEG_OK;
}

int steg_plain_write(stegfs_volume* vol, const char* path, const void* data,
                     size_t len) {
  if (vol == nullptr) return STEG_ERR_INVALID;
  return Fail(vol,
              vol->fs->plain()->WriteFile(
                  path, std::string(static_cast<const char*>(data), len)));
}

int steg_plain_read(stegfs_volume* vol, const char* path, void* buf,
                    size_t cap, size_t* out_len) {
  if (vol == nullptr || out_len == nullptr) return STEG_ERR_INVALID;
  auto data = vol->fs->plain()->ReadFile(path);
  if (!data.ok()) return Fail(vol, data.status());
  size_t n = std::min(cap, data->size());
  std::memcpy(buf, data->data(), n);
  *out_len = n;
  return STEG_OK;
}

int steg_rsa_keygen(uint32_t bits, const char* seed, uint8_t* pub,
                    size_t* pub_len, uint8_t* priv, size_t* priv_len) {
  if (pub_len == nullptr || priv_len == nullptr) return STEG_ERR_INVALID;
  auto pair = stegfs::crypto::RsaGenerateKeyPair(bits, seed);
  if (!pair.ok()) return CodeOf(pair.status());
  std::string pub_blob = pair->public_key.Serialize();
  std::string priv_blob = pair->private_key.Serialize();
  if (pub_blob.size() > *pub_len || priv_blob.size() > *priv_len) {
    *pub_len = pub_blob.size();
    *priv_len = priv_blob.size();
    return STEG_ERR_NOSPACE;
  }
  std::memcpy(pub, pub_blob.data(), pub_blob.size());
  std::memcpy(priv, priv_blob.data(), priv_blob.size());
  *pub_len = pub_blob.size();
  *priv_len = priv_blob.size();
  return STEG_OK;
}

}  // extern "C"
