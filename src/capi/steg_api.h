// C-compatible binding of the paper's section 4 API, function-for-function:
//
//   steg_create, steg_hide, steg_unhide, steg_connect, steg_disconnect,
//   steg_getentry, steg_addentry, steg_backup, steg_recovery
//
// plus the volume/session plumbing a C caller needs (mkfs/mount/unmount,
// read/write on connected objects, steg_stats introspection). All
// functions return 0 on success or a negative errno-style code;
// steg_strerror() yields the detailed message of the calling thread's most
// recent failure.
//
// Thread-safety: a mounted stegfs_volume handle is thread-safe — any
// number of threads may issue calls on one handle concurrently, and calls
// for distinct (uid, object) sessions proceed in parallel (the C++ stack
// underneath carries per-session, per-object and sharded-cache locking;
// see docs/ARCHITECTURE.md "Concurrency model"). Error messages are kept
// per thread, so steg_strerror() always describes the calling thread's own
// last failure. Only the lifecycle edges stay single-threaded: steg_mkfs,
// steg_mount, steg_recovery, and steg_unmount (which must not race any
// other call on the dying handle).
#ifndef STEGFS_CAPI_STEG_API_H_
#define STEGFS_CAPI_STEG_API_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct stegfs_volume stegfs_volume;

/* Error codes (negated StatusCode values). */
#define STEG_OK 0
#define STEG_ERR_NOT_FOUND -1
#define STEG_ERR_CORRUPTION -2
#define STEG_ERR_INVALID -3
#define STEG_ERR_IO -4
#define STEG_ERR_EXISTS -5
#define STEG_ERR_NOSPACE -6
#define STEG_ERR_DENIED -7
#define STEG_ERR_DATALOSS -8
#define STEG_ERR_UNSUPPORTED -9
#define STEG_ERR_PRECONDITION -10

/* Object types, as in the paper ('f' regular file, 'd' directory). */
#define STEG_TYPE_FILE 'f'
#define STEG_TYPE_DIR 'd'

/* --- volume lifecycle ------------------------------------------------- */

/* Creates + formats a volume backed by the host file `image_path`. */
int steg_mkfs(const char* image_path, uint32_t block_size,
              uint64_t num_blocks);

/* Mounts an existing volume; *out receives the handle. */
int steg_mount(const char* image_path, uint32_t block_size,
               stegfs_volume** out);

/* Flushes and releases the handle (disconnects all sessions). */
int steg_unmount(stegfs_volume* vol);

/* Detailed message of the calling thread's most recent error ("" if none).
 * The pointer stays valid until the same thread's next failing call. */
const char* steg_strerror(stegfs_volume* vol);

/* --- introspection ----------------------------------------------------- */

/* Point-in-time volume + buffer-cache counters. Cache counters are read
 * lock-free; space counters are consistent snapshots of the bitmap/inode
 * state. */
typedef struct stegfs_stats {
  /* buffer cache */
  uint64_t cache_hits;
  uint64_t cache_misses;
  uint64_t cache_evictions;
  uint64_t cache_writebacks;
  double cache_hit_rate; /* hits / (hits + misses), 0.0 when idle */
  /* space report */
  uint64_t block_size;
  uint64_t total_blocks;
  uint64_t metadata_blocks;
  uint64_t allocated_blocks; /* includes metadata */
  uint64_t free_blocks;
  uint64_t plain_file_bytes;
  /* batched data path */
  uint64_t cache_batched_reads;  /* blocks moved through batch reads */
  uint64_t cache_batched_writes; /* blocks moved through batch writes */
  uint64_t cache_prefetched;     /* blocks loaded by the readahead pool */
  uint64_t cache_prefetch_hits;  /* prefetched blocks later demand-read */
  uint64_t dev_vectored_blocks;  /* blocks moved through vectored dev I/O */
  uint64_t dev_coalesced_runs;   /* contiguous runs >= 2 blocks coalesced
                                    into one host transfer */
  /* active AES backend: "aes-ni" or "t-table" (static string, never
   * freed; stable for the process lifetime) */
  const char* crypto_tier;
  /* async I/O engine (static string, stable for the handle lifetime):
   * "io_uring", "thread-pool", or "sync" when no engine is attached */
  const char* io_engine;
  uint64_t io_submitted_batches; /* batches handed to the engine */
  uint64_t io_completed_batches; /* batches fully completed */
  uint64_t io_inflight_blocks;   /* point-in-time blocks in flight */
  /* readahead observability: the window silently degrades to off when it
   * cannot help (no engine and no spare core), and these make that
   * visible instead of the old silent zeroing */
  uint32_t readahead_active; /* 1 when a prefetcher is armed */
  uint32_t readahead_window; /* effective window in blocks (0 when off) */
  /* crash-consistency subsystem (all zero when the volume mounted without
   * a journal): the write-ahead journal's commit counters plus what
   * mount-time recovery replayed. Journaled durability composes only
   * with a write-back cache: the journal's ordered protocol holds dirty
   * metadata images back until their record commits, which a
   * write-through cache (every write pushed to the device immediately)
   * cannot honor — such a mount is refused up front with
   * STEG_ERR_INVALID rather than silently downgraded. */
  const char* durability;          /* "journal" or "none" (static string) */
  uint64_t journal_records;        /* committed journal records */
  uint64_t journal_blocks_logged;  /* metadata after-images written */
  uint64_t journal_barrier_syncs;  /* write barriers issued by commits */
  uint64_t journal_overflows;      /* txns too big for the ring */
  uint64_t journal_recovered_records; /* replayed by this mount's recovery */
  /* group commit (PR 9): concurrent sessions' transactions batched into
   * one merged journal record under one barrier sequence */
  uint64_t journal_group_txns;     /* txns committed via batches */
  uint64_t journal_group_batches;  /* merged batch records written */
  uint64_t journal_group_merged_blocks; /* after-images saved by merging
                                           (same-block images coalesced) */
  uint64_t io_fixed_buffer_ops;    /* registered-buffer (FIXED) uring ops */
  uint64_t io_fixed_buffer_read_ops; /* READ_FIXED subset: cache-miss
                                        reads via the pinned read pool */
  uint64_t cache_dirty_epoch;      /* ordered-writeback epoch counter */
  uint64_t cache_dirty_blocks;     /* dirty blocks parked in the cache */
  /* redundancy / self-healing (all zero when no object carries a policy).
   * gf_tier is the active GF(256) backend: "gfni", "pshufb" or
   * "gf-scalar" (static string, stable for the process lifetime) */
  const char* gf_tier;
  uint64_t red_stripes_encoded;  /* parity (re)computations */
  uint64_t red_shares_written;   /* parity share blocks written */
  uint64_t red_degraded_reads;   /* stripes found degraded on read */
  uint64_t red_shares_healed;    /* shares re-dispersed onto fresh blocks */
  uint64_t red_verify_failures;  /* share checksum/bitmap verification
                                    failures */
  /* fault tolerance (PR 8; static string + counters, see steg_health for
   * the full surface) */
  const char* health;            /* "healthy", "degraded" or "read-only" */
  uint64_t fault_transient_errors; /* transient/timeout-classed I/O errors */
  uint64_t fault_retries;          /* retry attempts issued */
  uint64_t fault_retry_exhausted;  /* ops that failed every attempt */
} stegfs_stats;

/* Fills *out; safe to call concurrently with any other operation. All
 * cumulative counters come from ONE consistent snapshot of the volume's
 * metrics registry (no torn reads between related fields); only the
 * point-in-time gauges (inflight blocks, dirty blocks, space report) are
 * read separately. */
int steg_stats(stegfs_volume* vol, stegfs_stats* out);

/* --- observability ------------------------------------------------------ */

/* Everything below lives ONLY in process memory: no block on the volume
 * ever carries metrics or trace bytes, so observability state is
 * invisible to an inspector of the image (the deniability rule). */

/* Prometheus text exposition (version 0.0.4) of every instrument of this
 * volume: counters and log-bucketed latency histograms across the device,
 * buffer cache, crypto, journal, async engine, redundancy and per-op file
 * system latencies. *out receives a malloc'd NUL-terminated buffer (free
 * with steg_buffer_free); *out_len (optional) its strlen. */
int steg_metrics_text(stegfs_volume* vol, char** out, size_t* out_len);

/* Arms/disarms the volume's in-memory trace ring. While started, every
 * data-path operation records one root span plus its nested phase spans
 * (cache fills, journal barriers, crypto sub-batches, async completions).
 * The ring is fixed-size and wraps: newest spans win. */
int steg_trace_start(stegfs_volume* vol);
int steg_trace_stop(stegfs_volume* vol);

/* Exports the ring as Chrome trace-event JSON (loadable in Perfetto /
 * about:tracing). Same buffer contract as steg_metrics_text. */
int steg_trace_export(stegfs_volume* vol, char** out, size_t* out_len);

/* Releases a buffer returned by steg_metrics_text / steg_trace_export. */
void steg_buffer_free(char* buf);

/* Process-wide observability master switch (initial state comes from the
 * STEGFS_OBS environment variable: unset or != "0" means enabled).
 * Disabled, every timer and span skips the clock read entirely — the
 * remaining cost is one relaxed atomic load per instrumentation site. */
void steg_obs_set_enabled(int enabled);
int steg_obs_enabled(void);

/* Online recovery/scrub report (see docs/ARCHITECTURE.md "Journal &
 * recovery"). Unconnected hidden objects are not — cannot be — audited:
 * that would require their keys, which is the whole point. CONNECTED
 * objects with a redundancy policy ARE audited: fsck verifies their
 * shares and re-disperses any it can prove lost. */
typedef struct stegfs_fsck_report {
  uint64_t referenced_blocks;   /* reachable from plain metadata */
  uint64_t unaccounted_blocks;  /* abandoned+dummy+hidden+leaked: counted,
                                   never reclaimed (deniability) */
  uint64_t repaired_refs;       /* referenced-but-unmarked bits re-set */
  uint64_t journal_live_records;    /* records still in the ring (0 when
                                       healthy) */
  uint64_t journal_scrubbed_blocks; /* ring blocks re-noised by this run */
  /* hidden-side scrub (connected redundant objects only) */
  uint64_t hidden_objects_scanned;
  uint64_t hidden_stripes_checked;
  uint64_t hidden_degraded_stripes;     /* stripes with >=1 lost share */
  uint64_t hidden_healed_shares;        /* shares re-dispersed */
  uint64_t hidden_unrecoverable_stripes; /* losses beyond the policy bound */
  int clean;                    /* 1 when no repairs were needed */
} stegfs_fsck_report;

/* Runs the online scrubber on a mounted volume; safe alongside other
 * operations (it takes the metadata lock internally). */
int steg_fsck(stegfs_volume* vol, stegfs_fsck_report* out);

/* --- fault tolerance & degraded mode ----------------------------------- */

/* The mount's health state machine (monotonic until steg_health_reset):
 * HEALTHY -> DEGRADED on retry exhaustion or detected corruption (reads
 * and writes keep flowing, redundancy heals what it can), -> READONLY on
 * a persistent write fault (every mutating call then fails with
 * STEG_ERR_PRECONDITION until reset; reads keep working). */
#define STEG_HEALTH_HEALTHY 0
#define STEG_HEALTH_DEGRADED 1
#define STEG_HEALTH_READONLY 2

typedef struct stegfs_health {
  int state;              /* STEG_HEALTH_* */
  const char* state_name; /* "healthy" / "degraded" / "read-only" (static) */
  uint64_t degraded_transitions;
  uint64_t readonly_transitions;
  uint64_t rejected_writes;  /* mutating calls refused while read-only */
  /* error taxonomy counters (classified at the device boundary) */
  uint64_t transient_errors;
  uint64_t persistent_errors;
  uint64_t corruption_errors;
  uint64_t timeout_errors;
  /* retry/backoff layer */
  uint64_t retries;         /* retry attempts issued */
  uint64_t retry_successes; /* ops that succeeded on a retry */
  uint64_t retry_exhausted; /* ops that failed every attempt */
  /* faults fired by this handle's injection layer (steg_mount_faulty
   * mounts only; 0 otherwise) */
  uint64_t faults_injected;
} stegfs_health;

/* Fills *out; safe concurrently with any other operation. */
int steg_health(stegfs_volume* vol, stegfs_health* out);

/* Administrative re-arm after the operator fixed the underlying device:
 * returns the state machine to HEALTHY, re-enabling writes. Counters are
 * cumulative and survive the reset. */
int steg_health_reset(stegfs_volume* vol);

/* steg_mount with a scriptable fault-injection layer between the file
 * system and the image — the chaos-testing entry point. `fault_spec` is
 * the schedule DSL (see src/fault/fault_injection_device.h):
 *
 *   spec := [ "seed=" N ";" ] rule { ";" rule }
 *   rule := op ":" kind [ "@" after ] [ "x" count ] { ":" param }
 *   op   := "read" | "write" | "sync" | "any"
 *   kind := "eio" (transient) | "fail" (persistent) | "error" (untagged)
 *           | "torn" | "flip" | "delay" | "timeout"
 *   param:= "blocks=" LO "-" HI | "us=" N
 *
 * e.g. "seed=7;write:eio@3x2;sync:fail". NULL or "" arms no faults.
 * Note: the injection layer hides the image's file descriptor, so these
 * mounts use the thread-pool async engine, never io_uring. */
int steg_mount_faulty(const char* image_path, uint32_t block_size,
                      const char* fault_spec, stegfs_volume** out);

/* Replaces the fault schedule on a live steg_mount_faulty volume (the
 * mount-time spec is consumed by mount/recovery I/O too — inject after
 * mount to aim faults at specific operations). NULL or "" clears all
 * rules ("heal the device"). Returns STEG_ERR_INVALID on a volume not
 * mounted via steg_mount_faulty or on a malformed spec. */
int steg_fault_inject(stegfs_volume* vol, const char* fault_spec);

/* --- the paper's nine calls ------------------------------------------- */

/* Creates a hidden object of `objtype` with a fresh random FAK and records
 * (objname, FAK) in the uak's directory (created on first use). */
int steg_create(stegfs_volume* vol, const char* uid, const char* objname,
                const char* uak, char objtype);

/* Redundancy policy words for steg_create_redundant: none (the plain
 * steg_create behavior), n-way replication (tolerates n-1 lost copies),
 * or (k,n) information dispersal — n shares per k-block stripe, any k
 * reconstruct, so up to n-k lost shares heal transparently. 2 <= n <= 16;
 * for IDA additionally 2 <= k < n. */
#define STEG_RED_NONE 0u
#define STEG_RED_REPLICATE(n) (0x01000000u | ((uint32_t)(n) & 0xffu))
#define STEG_RED_IDA(k, n) \
  (0x02000000u | (((uint32_t)(k) & 0xffu) << 8) | ((uint32_t)(n) & 0xffu))

/* steg_create with an extent-protection policy, fixed for the object's
 * lifetime and persisted in its hidden header. Shares are FAK-encrypted
 * and placed like every other hidden block, so a redundant object is
 * indistinguishable from a non-redundant one without its key. */
int steg_create_redundant(stegfs_volume* vol, const char* uid,
                          const char* objname, const char* uak, char objtype,
                          uint32_t policy);
/* Converts the plain file/directory at `pathname` into a hidden object
 * (recursively for directories) and deletes the plain source. */
int steg_hide(stegfs_volume* vol, const char* uid, const char* pathname,
              const char* objname, const char* uak);
/* Converts a hidden object back into a plain file/directory at `pathname`
 * and deletes the hidden source. */
int steg_unhide(stegfs_volume* vol, const char* uid, const char* pathname,
                const char* objname, const char* uak);
/* Resolves objname through the uak's directory and makes it visible to the
 * uid session; connecting a hidden directory reveals its offspring too. */
int steg_connect(stegfs_volume* vol, const char* uid, const char* objname,
                 const char* uak);
int steg_disconnect(stegfs_volume* vol, const char* uid,
                    const char* objname);
/* Sharing: getentry writes the grantee-RSA-encrypted (objname, type, FAK)
 * record to the PLAIN file `entryfile`; addentry decrypts such a record
 * with the grantee's private key, adds it to the grantee's uak directory,
 * and destroys the entry file. The grantor never learns the grantee's UAK.
 * Keys are the serialized bytes of crypto::Rsa*Key::Serialize. */
int steg_getentry(stegfs_volume* vol, const char* uid, const char* objname,
                  const char* uak, const char* entryfile,
                  const uint8_t* pubkey, size_t pubkey_len);
int steg_addentry(stegfs_volume* vol, const char* uid,
                  const char* entryfile, const uint8_t* privkey,
                  size_t privkey_len, const char* uak);
/* Writes the backup image to the HOST file `backupfile`. */
int steg_backup(stegfs_volume* vol, const char* backupfile);
/* Recovers the HOST image file onto `image_path` (fresh volume file). */
int steg_recovery(const char* image_path, uint32_t block_size,
                  uint64_t num_blocks, const char* backupfile);

/* --- I/O on connected hidden objects + plain files --------------------- */

int steg_hidden_write(stegfs_volume* vol, const char* uid,
                      const char* objname, const void* data, size_t len);
/* Reads up to `cap` bytes; *out_len receives the byte count. */
int steg_hidden_read(stegfs_volume* vol, const char* uid,
                     const char* objname, void* buf, size_t cap,
                     size_t* out_len);
int steg_plain_write(stegfs_volume* vol, const char* path, const void* data,
                     size_t len);
int steg_plain_read(stegfs_volume* vol, const char* path, void* buf,
                    size_t cap, size_t* out_len);

/* RSA helper so pure-C callers can make key pairs for sharing. Buffers
 * receive serialized keys; *pub_len / *priv_len are in/out (capacity in,
 * size out). */
int steg_rsa_keygen(uint32_t bits, const char* seed, uint8_t* pub,
                    size_t* pub_len, uint8_t* priv, size_t* priv_len);

#ifdef __cplusplus
}  /* extern "C" */
#endif

#endif  /* STEGFS_CAPI_STEG_API_H_ */
