#include "blockdev/disk_model.h"

#include <algorithm>
#include <cmath>

namespace stegfs {

DiskModel::DiskModel(const DiskModelConfig& config, uint32_t block_size)
    : config_(config), block_size_(block_size) {
  total_blocks_ = std::max<uint64_t>(1, config_.capacity_bytes / block_size_);
}

void DiskModel::Reset() {
  head_lba_ = 0;
  read_streams_.clear();
  write_streams_.clear();
  reads_.Reset();
  writes_.Reset();
  blocks_read_.Reset();
  blocks_written_.Reset();
  seeks_.Reset();
  drive_cache_hits_.Reset();
}

DiskModelStats DiskModel::stats() const {
  DiskModelStats s;
  s.reads = reads_.value();
  s.writes = writes_.value();
  s.blocks_read = blocks_read_.value();
  s.blocks_written = blocks_written_.value();
  s.seeks = seeks_.value();
  s.drive_cache_hits = drive_cache_hits_.value();
  return s;
}

void DiskModel::RegisterMetrics(obs::MetricsRegistry* reg) const {
  reg->RegisterCounter("stegfs_simdisk_reads_total",
                       "Modeled read requests", &reads_);
  reg->RegisterCounter("stegfs_simdisk_writes_total",
                       "Modeled write requests", &writes_);
  reg->RegisterCounter("stegfs_simdisk_blocks_read_total",
                       "Modeled blocks read", &blocks_read_);
  reg->RegisterCounter("stegfs_simdisk_blocks_written_total",
                       "Modeled blocks written", &blocks_written_);
  reg->RegisterCounter("stegfs_simdisk_seeks_total",
                       "Requests that paid a mechanical seek", &seeks_);
  reg->RegisterCounter("stegfs_simdisk_drive_cache_hits_total",
                       "Requests served from a drive cache segment",
                       &drive_cache_hits_);
}

double DiskModel::SeekSeconds(uint64_t from_lba, uint64_t to_lba) const {
  if (from_lba == to_lba) return 0.0;
  uint64_t dist = from_lba > to_lba ? from_lba - to_lba : to_lba - from_lba;
  double frac = static_cast<double>(dist) / static_cast<double>(total_blocks_);
  frac = std::min(frac, 1.0);
  // Square-root seek curve between track-to-track and full stroke.
  double ms = config_.track_to_track_seek_ms +
              (config_.full_stroke_seek_ms - config_.track_to_track_seek_ms) *
                  std::sqrt(frac);
  return ms / 1000.0;
}

double DiskModel::TransferSeconds(uint32_t nblocks) const {
  double bytes = static_cast<double>(nblocks) * block_size_;
  return bytes / (config_.media_transfer_mb_s * 1e6);
}

double DiskModel::AccessSeconds(const IoRequest& req) {
  auto& streams = req.is_write ? write_streams_ : read_streams_;
  const int capacity =
      req.is_write ? config_.write_segments : config_.read_segments;

  if (req.is_write) {
    writes_.Increment();
    blocks_written_.Add(req.nblocks);
  } else {
    reads_.Increment();
    blocks_read_.Add(req.nblocks);
  }

  double cost = config_.controller_overhead_ms / 1000.0;
  cost += TransferSeconds(req.nblocks);

  // A request that continues a tracked sequential stream avoids the
  // mechanical penalty (the drive prefetched it / buffers the write).
  auto it = std::find(streams.begin(), streams.end(), req.lba);
  if (it != streams.end()) {
    drive_cache_hits_.Increment();
    streams.erase(it);
    streams.push_front(req.lba + req.nblocks);
    return cost;
  }

  // Mechanical access: seek from the current head position plus average
  // rotational latency.
  seeks_.Increment();
  cost += SeekSeconds(head_lba_, req.lba);
  cost += config_.AvgRotationalLatencyMs() / 1000.0;
  head_lba_ = req.lba + req.nblocks;

  // Start tracking this stream, evicting the least recently used segment.
  streams.push_front(req.lba + req.nblocks);
  while (static_cast<int>(streams.size()) > capacity) {
    streams.pop_back();
  }
  return cost;
}

}  // namespace stegfs
