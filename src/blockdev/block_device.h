// BlockDevice: the storage abstraction every file system in this repo sits
// on (RocksDB's Env idiom, narrowed to fixed-size block I/O).
//
// Implementations:
//   MemBlockDevice  - RAM-backed, for tests and simulation
//   FileBlockDevice - host-file-backed, for persistent example volumes
//   SimDisk         - wraps another device, charges a DiskModel for every
//                     request and records I/O traces (blockdev/sim_disk.h)
#ifndef STEGFS_BLOCKDEV_BLOCK_DEVICE_H_
#define STEGFS_BLOCKDEV_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"
#include "util/status.h"

namespace stegfs {

// What Flush() promises. kDurable reaches stable storage (fdatasync on
// file-backed devices); kCacheOnly stops at the kernel page cache — the
// pre-journal behavior, kept as a bench escape hatch because an fdatasync
// per flush is a real cost the throughput benches should not pay.
// Sync() is ALWAYS durable regardless of this mode: it is the journal's
// write barrier and must never be weakened.
enum class FlushDurability { kDurable, kCacheOnly };

// One element of a vectored request: a block number and the caller buffer
// it transfers to/from (block_size() bytes each).
struct BlockIoVec {
  uint64_t block;
  uint8_t* buf;
};
struct ConstBlockIoVec {
  uint64_t block;
  const uint8_t* buf;
};

// Counters for the vectored data path (all zero on devices that only have
// the per-block fallback).
struct DeviceBatchStats {
  // Blocks moved through ReadBlocks/WriteBlocks.
  uint64_t vectored_blocks = 0;
  // Physical transfers that coalesced a contiguous run of >= 2 blocks into
  // one host I/O.
  uint64_t coalesced_runs = 0;
};

// Per-device instrument group. Concrete devices own one and expose it via
// device_metrics(); decorators (SimDisk, ThrottledBlockDevice) forward the
// inner device's, so a mount registers the real backing device whatever
// the stack looks like. Latency histograms are recorded per vectored call
// and per barrier — never per block — so the hot path pays one clock pair
// per device call, not per 4 KB; single-block ops bump only a relaxed
// counter.
struct DeviceMetrics {
  obs::Histogram read_ns;   // vectored read call latency
  obs::Histogram write_ns;  // vectored write call latency
  obs::Histogram sync_ns;   // Sync() barrier latency
  obs::Counter blocks_read;
  obs::Counter blocks_written;
  obs::Counter syncs;
  obs::Counter vectored_blocks;
  obs::Counter coalesced_runs;

  void RegisterWith(obs::MetricsRegistry* reg) const {
    reg->RegisterHistogram("stegfs_device_read_seconds",
                           "Vectored device read call latency", &read_ns);
    reg->RegisterHistogram("stegfs_device_write_seconds",
                           "Vectored device write call latency", &write_ns);
    reg->RegisterHistogram("stegfs_device_sync_seconds",
                           "Device barrier (Sync) latency", &sync_ns);
    reg->RegisterCounter("stegfs_device_blocks_read_total",
                         "Blocks read from the device", &blocks_read);
    reg->RegisterCounter("stegfs_device_blocks_written_total",
                         "Blocks written to the device", &blocks_written);
    reg->RegisterCounter("stegfs_device_syncs_total",
                         "Device barriers issued", &syncs);
    reg->RegisterCounter("stegfs_device_vectored_blocks_total",
                         "Blocks moved through vectored calls",
                         &vectored_blocks);
    reg->RegisterCounter("stegfs_device_coalesced_runs_total",
                         "Contiguous runs coalesced into one host I/O",
                         &coalesced_runs);
  }
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Fixed block size in bytes. Power of two, >= 512.
  virtual uint32_t block_size() const = 0;
  // Total number of blocks on the device.
  virtual uint64_t num_blocks() const = 0;

  // Reads/writes exactly one block. `buf` must hold block_size() bytes.
  // Fails with InvalidArgument on out-of-range block numbers.
  virtual Status ReadBlock(uint64_t block, uint8_t* buf) = 0;
  virtual Status WriteBlock(uint64_t block, const uint8_t* buf) = 0;

  // Vectored I/O: transfers `n` blocks in request order. The base
  // implementation loops over ReadBlock/WriteBlock, so every decorator
  // (SimDisk, ThrottledBlockDevice, the test FaultyDevice) keeps its
  // per-request accounting unchanged; FileBlockDevice overrides to
  // coalesce contiguous runs into single host transfers. On error the
  // request stops at the failing block — earlier blocks have transferred,
  // later ones have not.
  virtual Status ReadBlocks(const BlockIoVec* iov, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      STEGFS_RETURN_IF_ERROR(ReadBlock(iov[i].block, iov[i].buf));
    }
    return Status::OK();
  }
  virtual Status WriteBlocks(const ConstBlockIoVec* iov, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      STEGFS_RETURN_IF_ERROR(WriteBlock(iov[i].block, iov[i].buf));
    }
    return Status::OK();
  }

  // Batch-path counters; devices without a vectored fast path report zeros.
  virtual DeviceBatchStats batch_stats() const { return {}; }

  // The device's instrument group, when it keeps one (nullptr otherwise).
  // Decorators forward the inner device's group — accounting belongs to
  // the device doing the physical I/O.
  virtual const DeviceMetrics* device_metrics() const { return nullptr; }

  // Raw POSIX file descriptor backing the device, when one exists (-1
  // otherwise). The io_uring async engine attaches to it. Decorators
  // (SimDisk, ThrottledBlockDevice, FaultyDevice) deliberately do NOT
  // forward the inner device's descriptor: a decorated stack must fall
  // back to the thread-pool engine so every request still flows through
  // the decorator's accounting and fault injection.
  virtual int file_descriptor() const { return -1; }

  // Persists all completed writes with the device's flush durability
  // (durable by default on file-backed devices; see FlushDurability).
  virtual Status Flush() = 0;

  // Write barrier: returns only when every completed write is on stable
  // storage, regardless of flush_durability(). The journal's commit
  // protocol is built on this; decorators must forward it so barrier
  // ordering survives any device stack. In-memory devices complete
  // immediately. NOTE: Sync() orders only COMPLETED writes — callers
  // using an async engine must Drain() it first (the engine half of the
  // write-barrier contract).
  virtual Status Sync() { return Flush(); }

  // Barrier count (for tests and the journal's stats). Devices that
  // don't track it report 0.
  virtual uint64_t sync_count() const { return 0; }

  // Adjusts what Flush() promises. Default no-op: only devices with a
  // page-cache/stable-storage distinction (FileBlockDevice) implement it.
  virtual void set_flush_durability(FlushDurability mode) { (void)mode; }
  virtual FlushDurability flush_durability() const {
    return FlushDurability::kDurable;
  }

  uint64_t capacity_bytes() const {
    return static_cast<uint64_t>(block_size()) * num_blocks();
  }
};

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_BLOCK_DEVICE_H_
