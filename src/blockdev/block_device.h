// BlockDevice: the storage abstraction every file system in this repo sits
// on (RocksDB's Env idiom, narrowed to fixed-size block I/O).
//
// Implementations:
//   MemBlockDevice  - RAM-backed, for tests and simulation
//   FileBlockDevice - host-file-backed, for persistent example volumes
//   SimDisk         - wraps another device, charges a DiskModel for every
//                     request and records I/O traces (blockdev/sim_disk.h)
#ifndef STEGFS_BLOCKDEV_BLOCK_DEVICE_H_
#define STEGFS_BLOCKDEV_BLOCK_DEVICE_H_

#include <cstdint>

#include "util/status.h"

namespace stegfs {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Fixed block size in bytes. Power of two, >= 512.
  virtual uint32_t block_size() const = 0;
  // Total number of blocks on the device.
  virtual uint64_t num_blocks() const = 0;

  // Reads/writes exactly one block. `buf` must hold block_size() bytes.
  // Fails with InvalidArgument on out-of-range block numbers.
  virtual Status ReadBlock(uint64_t block, uint8_t* buf) = 0;
  virtual Status WriteBlock(uint64_t block, const uint8_t* buf) = 0;

  // Durably persists all completed writes.
  virtual Status Flush() = 0;

  uint64_t capacity_bytes() const {
    return static_cast<uint64_t>(block_size()) * num_blocks();
  }
};

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_BLOCK_DEVICE_H_
