// AsyncBlockDevice: the submit/complete half of the storage stack.
//
// The synchronous BlockDevice::ReadBlocks/WriteBlocks calls coalesce well
// but serialize the machine: the device idles while the CPU encrypts and
// the CPU idles while the device transfers. AsyncBlockDevice splits every
// batch into a submission (returns immediately with a waitable IoTicket)
// and a completion (an optional callback that runs exactly once when the
// whole batch is done), so the layers above can keep several batches in
// flight and overlap crypto with device time. This is what makes
// random-placed hidden blocks fast: their requests can never coalesce
// into contiguous runs (the placement randomness IS the deniability), but
// they can all be in flight at once.
//
// Implementations:
//   UringBlockDevice      - io_uring over a host-file descriptor (Linux,
//                           runtime-detected; blockdev/uring_block_device.h)
//   ThreadPoolAsyncDevice - portable fallback adapting any synchronous
//                           BlockDevice via a small thread pool, so the
//                           decorated devices (SimDisk, ThrottledBlockDevice,
//                           the test FaultyDevice) keep their per-request
//                           accounting and fault-injection semantics
//                           (blockdev/thread_pool_async_device.h)
//
// Contracts shared by every implementation:
//   - The buffers referenced by a submitted iov must stay alive until the
//     batch completes (callback has returned / Wait() has returned).
//   - The completion callback runs exactly once per batch, possibly
//     inline during Submit*, possibly on an internal engine thread. It
//     may acquire locks (the buffer cache's completion handlers take a
//     shard stripe), but it must not Wait() on tickets of the same engine
//     and must not submit new batches (either could deadlock the
//     completion thread behind itself).
//   - A batch has no intra-batch ordering guarantee: its blocks may
//     transfer in any order and a mid-batch error does NOT say which
//     blocks transferred. Callers needing orderly duplicates (two writes
//     to one block in one batch) must use the synchronous path.
//   - Threads blocked in Wait() must not hold any lock a completion
//     callback can take (see the lock hierarchy in docs/ARCHITECTURE.md).
#ifndef STEGFS_BLOCKDEV_ASYNC_BLOCK_DEVICE_H_
#define STEGFS_BLOCKDEV_ASYNC_BLOCK_DEVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "blockdev/block_device.h"
#include "util/status.h"

namespace stegfs {

// Point-in-time counters of an async engine (steg_stats exposes them).
struct AsyncIoStats {
  uint64_t submitted_batches = 0;
  uint64_t submitted_blocks = 0;
  uint64_t completed_batches = 0;
  uint64_t failed_batches = 0;   // completed with a non-OK status
  uint64_t inflight_blocks = 0;  // submitted, not yet completed
  // Ops that went through a kernel-registered buffer
  // (IORING_OP_*_FIXED); always 0 on the thread-pool engine.
  uint64_t fixed_buffer_ops = 0;
  // The READ_FIXED subset of fixed_buffer_ops (cache-miss reads staged
  // through the read pool); always 0 on the thread-pool engine.
  uint64_t fixed_buffer_read_ops = 0;
};

// Runs when a batch completes; receives the batch status.
using IoCompletionFn = std::function<void(const Status&)>;

// Waitable handle for one submitted batch. Copyable (all copies share the
// batch state); Wait() is idempotent and multi-waiter safe. A
// default-constructed ticket is already complete with OK — the inline
// paths (all-hits cache batches, engineless fallbacks) return one.
class IoTicket {
 public:
  IoTicket() = default;

  static IoTicket Ready(Status s) {
    IoTicket t;
    if (!s.ok()) {
      t.state_ = std::make_shared<State>();
      t.state_->done = true;
      t.state_->status = std::move(s);
    }
    return t;
  }

  // Blocks until the batch completes (its callback included) and returns
  // the batch status.
  Status Wait() {
    if (state_ == nullptr) return Status::OK();
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
    return state_->status;
  }

  bool done() const {
    if (state_ == nullptr) return true;
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
  }

 private:
  friend class IoCompletion;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
  };
  std::shared_ptr<State> state_;
};

// Engine-side producer end of an IoTicket: Complete() fires the ticket
// exactly once (asserting against double completion is the engines' job;
// the state simply latches the first call).
class IoCompletion {
 public:
  IoCompletion() : state_(std::make_shared<IoTicket::State>()) {}

  IoTicket ticket() const {
    IoTicket t;
    t.state_ = state_;
    return t;
  }

  void Complete(Status s) {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->done) return;  // never complete a request twice
    state_->status = std::move(s);
    state_->done = true;
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<IoTicket::State> state_;
};

// Shared per-batch completion state for engine implementations: the
// remaining-op countdown, the first-error latch, and the callback +
// ticket pair. The finalize contract every engine must follow (encoded
// once here, referenced by both engines): run `done` FIRST (before the
// ticket unblocks, and before the engine's inflight counters drop so
// Drain() covers the callback), then drop the engine counters and notify
// its drain condvar UNDER the engine mutex (once Drain() returns the
// engine may be destroyed), and Complete() the ticket LAST so a waiter
// returning from Wait() observes quiesced stats — safe against
// post-Drain destruction because the ticket state is independently
// shared and engine threads are joined by the destructor.
struct AsyncBatchState {
  std::atomic<size_t> remaining{0};
  std::mutex mu;  // guards `status`
  Status status;
  IoCompletionFn done;
  IoCompletion completion;
  size_t blocks = 0;
  uint64_t submit_ns = 0;  // NowNanos() at submission (0 = obs disabled)

  // Latches the first error a slice/op reports.
  void RecordError(const Status& s) {
    if (s.ok()) return;
    std::lock_guard<std::mutex> lock(mu);
    if (status.ok()) status = s;
  }
  Status Snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return status;
  }
};

class AsyncBlockDevice {
 public:
  virtual ~AsyncBlockDevice() = default;

  virtual uint32_t block_size() const = 0;
  virtual uint64_t num_blocks() const = 0;
  // Static identifier: "io_uring" or "thread-pool".
  virtual const char* engine_name() const = 0;

  // Submits one batch; the engine owns the iov vector (moved in), the
  // caller keeps the data buffers alive until completion. `done` (may be
  // empty) runs exactly once with the final batch status, BEFORE the
  // returned ticket unblocks. An empty iov completes inline with OK.
  virtual IoTicket SubmitRead(std::vector<BlockIoVec> iov,
                              IoCompletionFn done = nullptr) = 0;
  virtual IoTicket SubmitWrite(std::vector<ConstBlockIoVec> iov,
                               IoCompletionFn done = nullptr) = 0;

  // Blocks until every batch submitted so far has completed. Destructors
  // of all engines drain, so fire-and-forget submitters (the cache's
  // prefetcher) need no bookkeeping.
  virtual void Drain() = 0;

  // --- Registered-buffer arena (io_uring's IORING_REGISTER_BUFFERS) ----
  // A pinned, block-aligned staging pool registered with the kernel once
  // at attach. Submissions whose buffers lie inside it skip the per-op
  // page pin/unpin (IORING_OP_*_FIXED). Lease spans of up to
  // arena_span_blocks() blocks; Acquire returns nullptr when the engine
  // has no arena (thread-pool fallback, registration refused by the
  // kernel, pool exhausted) — callers then stage in their own memory and
  // the op is submitted unregistered, so the arena is purely an
  // optimization. Release accepts only pointers Acquire returned.
  virtual uint8_t* AcquireArenaSpan(size_t blocks) {
    (void)blocks;
    return nullptr;
  }
  virtual void ReleaseArenaSpan(uint8_t* span) { (void)span; }
  virtual size_t arena_span_blocks() const { return 0; }

  // Read-side pinned pool, same contract as the staging arena but sized
  // for cache-miss read batches (the buffer cache leases a span per miss
  // group, receives the transfer via READ_FIXED, then copies into the
  // caller's buffers and releases). nullptr / 0 mean "no pool" and the
  // cache submits straight into caller memory — the pool, like the
  // staging arena, is purely an optimization.
  virtual uint8_t* AcquireReadSpan(size_t blocks) {
    (void)blocks;
    return nullptr;
  }
  virtual void ReleaseReadSpan(uint8_t* span) { (void)span; }
  virtual size_t read_span_blocks() const { return 0; }

  virtual AsyncIoStats stats() const = 0;

  // Publishes the engine's instruments into `reg` (stegfs_async_* names).
  // Default no-op so test doubles need not care.
  virtual void RegisterMetrics(obs::MetricsRegistry* reg) const {
    (void)reg;
  }
};

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_ASYNC_BLOCK_DEVICE_H_
