// ThreadPoolAsyncDevice: the portable async engine — adapts any
// synchronous BlockDevice to the AsyncBlockDevice interface by running
// each batch's slices on a small worker pool (the PR 2 thread pool).
//
// Because every transfer ends up in the base device's own vectored
// ReadBlocks/WriteBlocks (whose default is the per-block loop), the
// decorated devices keep their semantics unchanged: SimDisk still charges
// its model per request, ThrottledBlockDevice still sleeps per block, and
// the test FaultyDevice still trips its countdown per operation. That is
// what lets the whole async data path run — and be fault-tested — on hosts
// and kernels without io_uring.
//
// A batch is split into at most `workers` slices so its blocks transfer in
// parallel; the last slice to finish completes the batch (exactly once)
// with the first error any slice saw.
#ifndef STEGFS_BLOCKDEV_THREAD_POOL_ASYNC_DEVICE_H_
#define STEGFS_BLOCKDEV_THREAD_POOL_ASYNC_DEVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "blockdev/async_block_device.h"
#include "concurrency/thread_pool.h"
#include "obs/metrics.h"

namespace stegfs {

class ThreadPoolAsyncDevice : public AsyncBlockDevice {
 public:
  // `base` must outlive the engine. workers == 0 picks a small default
  // (half the hardware threads, clamped to [2, 4] — enough to overlap
  // I/O with crypto without oversubscribing the demand path).
  explicit ThreadPoolAsyncDevice(BlockDevice* base, size_t workers = 0);
  ~ThreadPoolAsyncDevice() override;  // drains, then joins the pool

  uint32_t block_size() const override { return base_->block_size(); }
  uint64_t num_blocks() const override { return base_->num_blocks(); }
  const char* engine_name() const override { return "thread-pool"; }

  IoTicket SubmitRead(std::vector<BlockIoVec> iov,
                      IoCompletionFn done = nullptr) override;
  IoTicket SubmitWrite(std::vector<ConstBlockIoVec> iov,
                       IoCompletionFn done = nullptr) override;

  void Drain() override;
  AsyncIoStats stats() const override;

  // Publishes the engine counters and the batch-latency histogram into
  // `reg` under stegfs_async_* names (stats() stays the legacy snapshot).
  void RegisterMetrics(obs::MetricsRegistry* reg) const override;

 private:
  // One in-flight batch (`remaining` counts slices here); the slice that
  // drops it to zero finalizes per the AsyncBatchState contract.
  using Batch = AsyncBatchState;

  template <typename Vec, typename Transfer>
  IoTicket Submit(std::vector<Vec> iov, IoCompletionFn done,
                  Transfer transfer);
  void Finalize(const std::shared_ptr<Batch>& batch);

  BlockDevice* base_;
  concurrency::ThreadPool pool_;

  mutable std::mutex mu_;          // guards inflight_* for Drain
  std::condition_variable drain_cv_;
  uint64_t inflight_batches_ = 0;
  uint64_t inflight_blocks_ = 0;

  obs::Counter submitted_batches_;
  obs::Counter submitted_blocks_;
  obs::Counter completed_batches_;
  obs::Counter failed_batches_;
  obs::Histogram batch_ns_;  // submit -> finalize, per batch
};

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_THREAD_POOL_ASYNC_DEVICE_H_
