#include "blockdev/file_block_device.h"

#include <sys/stat.h>

#include <vector>

namespace stegfs {

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Create(
    const std::string& path, uint32_t block_size, uint64_t num_blocks) {
  if (block_size < 512 || (block_size & (block_size - 1)) != 0) {
    return Status::InvalidArgument("block size must be a power of two >= 512");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IOError("cannot create volume file: " + path);
  }
  // Extend to full size so reads of untouched blocks succeed.
  if (std::fseek(f, static_cast<long>(block_size * num_blocks) - 1,
                 SEEK_SET) != 0 ||
      std::fputc(0, f) == EOF) {
    std::fclose(f);
    return Status::IOError("cannot size volume file: " + path);
  }
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(f, block_size, num_blocks));
}

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, uint32_t block_size) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IOError("cannot open volume file: " + path);
  }
  struct stat st;
  if (stat(path.c_str(), &st) != 0) {
    std::fclose(f);
    return Status::IOError("cannot stat volume file: " + path);
  }
  if (st.st_size % block_size != 0) {
    std::fclose(f);
    return Status::InvalidArgument("volume size not a multiple of block size");
  }
  uint64_t num_blocks = static_cast<uint64_t>(st.st_size) / block_size;
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(f, block_size, num_blocks));
}

FileBlockDevice::~FileBlockDevice() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileBlockDevice::ReadBlock(uint64_t block, uint8_t* buf) {
  if (block >= num_blocks_) {
    return Status::InvalidArgument("read past end of device");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fseek(file_, static_cast<long>(block * block_size_), SEEK_SET) !=
          0 ||
      std::fread(buf, 1, block_size_, file_) != block_size_) {
    return Status::IOError("short read from volume file");
  }
  return Status::OK();
}

Status FileBlockDevice::WriteBlock(uint64_t block, const uint8_t* buf) {
  if (block >= num_blocks_) {
    return Status::InvalidArgument("write past end of device");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fseek(file_, static_cast<long>(block * block_size_), SEEK_SET) !=
          0 ||
      std::fwrite(buf, 1, block_size_, file_) != block_size_) {
    return Status::IOError("short write to volume file");
  }
  return Status::OK();
}

Status FileBlockDevice::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fflush(file_) != 0) {
    return Status::IOError("fflush failed");
  }
  return Status::OK();
}

}  // namespace stegfs
