#include "blockdev/file_block_device.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstring>
#include <vector>

namespace stegfs {

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Create(
    const std::string& path, uint32_t block_size, uint64_t num_blocks) {
  if (block_size < 512 || (block_size & (block_size - 1)) != 0) {
    return Status::InvalidArgument("block size must be a power of two >= 512");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IOError("cannot create volume file: " + path);
  }
  // Extend to full size so reads of untouched blocks succeed.
  if (std::fseek(f, static_cast<long>(block_size * num_blocks) - 1,
                 SEEK_SET) != 0 ||
      std::fputc(0, f) == EOF) {
    std::fclose(f);
    return Status::IOError("cannot size volume file: " + path);
  }
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(f, block_size, num_blocks));
}

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, uint32_t block_size) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IOError("cannot open volume file: " + path);
  }
  struct stat st;
  if (stat(path.c_str(), &st) != 0) {
    std::fclose(f);
    return Status::IOError("cannot stat volume file: " + path);
  }
  if (st.st_size % block_size != 0) {
    std::fclose(f);
    return Status::InvalidArgument("volume size not a multiple of block size");
  }
  uint64_t num_blocks = static_cast<uint64_t>(st.st_size) / block_size;
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(f, block_size, num_blocks));
}

FileBlockDevice::~FileBlockDevice() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileBlockDevice::ReadBlock(uint64_t block, uint8_t* buf) {
  if (block >= num_blocks_) {
    return Status::InvalidArgument("read past end of device");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fseek(file_, static_cast<long>(block * block_size_), SEEK_SET) !=
          0 ||
      std::fread(buf, 1, block_size_, file_) != block_size_) {
    return Status::IOError("short read from volume file");
  }
  return Status::OK();
}

Status FileBlockDevice::WriteBlock(uint64_t block, const uint8_t* buf) {
  if (block >= num_blocks_) {
    return Status::InvalidArgument("write past end of device");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fseek(file_, static_cast<long>(block * block_size_), SEEK_SET) !=
          0 ||
      std::fwrite(buf, 1, block_size_, file_) != block_size_) {
    return Status::IOError("short write to volume file");
  }
  return Status::OK();
}

namespace {

// Upper bound on one coalesced host transfer (bounds scratch memory when
// gather/scattering a long run).
constexpr size_t kMaxRunBytes = 4 << 20;

}  // namespace

template <typename Vec>
size_t FileBlockDevice::RunLength(const Vec* iov, size_t n, size_t i) const {
  const size_t cap = std::max<size_t>(1, kMaxRunBytes / block_size_);
  size_t len = 1;
  while (i + len < n && len < cap &&
         iov[i + len].block == iov[i].block + len) {
    ++len;
  }
  return len;
}

Status FileBlockDevice::ReadBlocks(const BlockIoVec* iov, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (iov[i].block >= num_blocks_) {
      return Status::InvalidArgument("read past end of device");
    }
  }
  vectored_blocks_.fetch_add(n, std::memory_order_relaxed);
  std::vector<uint8_t> scratch;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < n;) {
    const size_t run = RunLength(iov, n, i);
    const size_t bytes = run * block_size_;
    if (std::fseek(file_, static_cast<long>(iov[i].block * block_size_),
                   SEEK_SET) != 0) {
      return Status::IOError("seek failed on volume file");
    }
    if (run == 1) {
      if (std::fread(iov[i].buf, 1, block_size_, file_) != block_size_) {
        return Status::IOError("short read from volume file");
      }
    } else {
      scratch.resize(bytes);
      if (std::fread(scratch.data(), 1, bytes, file_) != bytes) {
        return Status::IOError("short read from volume file");
      }
      for (size_t j = 0; j < run; ++j) {
        std::memcpy(iov[i + j].buf, scratch.data() + j * block_size_,
                    block_size_);
      }
      coalesced_runs_.fetch_add(1, std::memory_order_relaxed);
    }
    i += run;
  }
  return Status::OK();
}

Status FileBlockDevice::WriteBlocks(const ConstBlockIoVec* iov, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (iov[i].block >= num_blocks_) {
      return Status::InvalidArgument("write past end of device");
    }
  }
  vectored_blocks_.fetch_add(n, std::memory_order_relaxed);
  std::vector<uint8_t> scratch;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < n;) {
    const size_t run = RunLength(iov, n, i);
    const size_t bytes = run * block_size_;
    if (std::fseek(file_, static_cast<long>(iov[i].block * block_size_),
                   SEEK_SET) != 0) {
      return Status::IOError("seek failed on volume file");
    }
    if (run == 1) {
      if (std::fwrite(iov[i].buf, 1, block_size_, file_) != block_size_) {
        return Status::IOError("short write to volume file");
      }
    } else {
      scratch.resize(bytes);
      for (size_t j = 0; j < run; ++j) {
        std::memcpy(scratch.data() + j * block_size_, iov[i + j].buf,
                    block_size_);
      }
      if (std::fwrite(scratch.data(), 1, bytes, file_) != bytes) {
        return Status::IOError("short write to volume file");
      }
      coalesced_runs_.fetch_add(1, std::memory_order_relaxed);
    }
    i += run;
  }
  return Status::OK();
}

DeviceBatchStats FileBlockDevice::batch_stats() const {
  DeviceBatchStats s;
  s.vectored_blocks = vectored_blocks_.load(std::memory_order_relaxed);
  s.coalesced_runs = coalesced_runs_.load(std::memory_order_relaxed);
  return s;
}

Status FileBlockDevice::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fflush(file_) != 0) {
    return Status::IOError("fflush failed");
  }
  return Status::OK();
}

}  // namespace stegfs
