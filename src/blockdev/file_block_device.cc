#include "blockdev/file_block_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

namespace stegfs {

namespace {

// pread/pwrite may transfer less than requested; loop to the full count.
Status FullRead(int fd, uint8_t* buf, size_t n, uint64_t off) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = pread(fd, buf + done, n - done,
                      static_cast<off_t>(off + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread failed on volume file");
    }
    if (r == 0) return Status::IOError("short read from volume file");
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status FullWrite(int fd, const uint8_t* buf, size_t n, uint64_t off) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = pwrite(fd, buf + done, n - done,
                       static_cast<off_t>(off + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite failed on volume file");
    }
    if (r == 0) return Status::IOError("short write to volume file");
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Create(
    const std::string& path, uint32_t block_size, uint64_t num_blocks) {
  if (block_size < 512 || (block_size & (block_size - 1)) != 0) {
    return Status::InvalidArgument("block size must be a power of two >= 512");
  }
  int fd = open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create volume file: " + path);
  }
  // Extend to full size so reads of untouched blocks succeed.
  if (ftruncate(fd, static_cast<off_t>(static_cast<uint64_t>(block_size) *
                                       num_blocks)) != 0) {
    close(fd);
    return Status::IOError("cannot size volume file: " + path);
  }
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(fd, block_size, num_blocks));
}

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, uint32_t block_size) {
  int fd = open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("cannot open volume file: " + path);
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    close(fd);
    return Status::IOError("cannot stat volume file: " + path);
  }
  if (st.st_size % block_size != 0) {
    close(fd);
    return Status::InvalidArgument("volume size not a multiple of block size");
  }
  uint64_t num_blocks = static_cast<uint64_t>(st.st_size) / block_size;
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(fd, block_size, num_blocks));
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) close(fd_);
}

Status FileBlockDevice::ReadBlock(uint64_t block, uint8_t* buf) {
  if (block >= num_blocks_) {
    return Status::InvalidArgument("read past end of device");
  }
  metrics_.blocks_read.Increment();
  return FullRead(fd_, buf, block_size_, block * block_size_);
}

Status FileBlockDevice::WriteBlock(uint64_t block, const uint8_t* buf) {
  if (block >= num_blocks_) {
    return Status::InvalidArgument("write past end of device");
  }
  metrics_.blocks_written.Increment();
  return FullWrite(fd_, buf, block_size_, block * block_size_);
}

namespace {

// Upper bound on one coalesced host transfer (bounds scratch memory when
// gather/scattering a long run).
constexpr size_t kMaxRunBytes = 4 << 20;

}  // namespace

template <typename Vec>
size_t FileBlockDevice::RunLength(const Vec* iov, size_t n, size_t i) const {
  const size_t cap = std::max<size_t>(1, kMaxRunBytes / block_size_);
  size_t len = 1;
  while (i + len < n && len < cap &&
         iov[i + len].block == iov[i].block + len) {
    ++len;
  }
  return len;
}

Status FileBlockDevice::ReadBlocks(const BlockIoVec* iov, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (iov[i].block >= num_blocks_) {
      return Status::InvalidArgument("read past end of device");
    }
  }
  obs::LatencyTimer io_timer(&metrics_.read_ns);
  metrics_.vectored_blocks.Add(n);
  metrics_.blocks_read.Add(n);
  std::vector<uint8_t> scratch;
  for (size_t i = 0; i < n;) {
    const size_t run = RunLength(iov, n, i);
    const size_t bytes = run * block_size_;
    const uint64_t off = iov[i].block * block_size_;
    if (run == 1) {
      STEGFS_RETURN_IF_ERROR(FullRead(fd_, iov[i].buf, block_size_, off));
    } else {
      scratch.resize(bytes);
      STEGFS_RETURN_IF_ERROR(FullRead(fd_, scratch.data(), bytes, off));
      for (size_t j = 0; j < run; ++j) {
        std::memcpy(iov[i + j].buf, scratch.data() + j * block_size_,
                    block_size_);
      }
      metrics_.coalesced_runs.Increment();
    }
    i += run;
  }
  return Status::OK();
}

Status FileBlockDevice::WriteBlocks(const ConstBlockIoVec* iov, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (iov[i].block >= num_blocks_) {
      return Status::InvalidArgument("write past end of device");
    }
  }
  obs::LatencyTimer io_timer(&metrics_.write_ns);
  metrics_.vectored_blocks.Add(n);
  metrics_.blocks_written.Add(n);
  std::vector<uint8_t> scratch;
  for (size_t i = 0; i < n;) {
    const size_t run = RunLength(iov, n, i);
    const size_t bytes = run * block_size_;
    const uint64_t off = iov[i].block * block_size_;
    if (run == 1) {
      STEGFS_RETURN_IF_ERROR(FullWrite(fd_, iov[i].buf, block_size_, off));
    } else {
      scratch.resize(bytes);
      for (size_t j = 0; j < run; ++j) {
        std::memcpy(scratch.data() + j * block_size_, iov[i + j].buf,
                    block_size_);
      }
      STEGFS_RETURN_IF_ERROR(FullWrite(fd_, scratch.data(), bytes, off));
      metrics_.coalesced_runs.Increment();
    }
    i += run;
  }
  return Status::OK();
}

DeviceBatchStats FileBlockDevice::batch_stats() const {
  DeviceBatchStats s;
  s.vectored_blocks = metrics_.vectored_blocks.value();
  s.coalesced_runs = metrics_.coalesced_runs.value();
  return s;
}

Status FileBlockDevice::Flush() {
  if (durability_.load(std::memory_order_relaxed) ==
      FlushDurability::kCacheOnly) {
    return Status::OK();
  }
  return Sync();
}

Status FileBlockDevice::Sync() {
  obs::LatencyTimer sync_timer(&metrics_.sync_ns);
  metrics_.syncs.Increment();
  if (fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync failed on volume file");
  }
  return Status::OK();
}

}  // namespace stegfs
