// I/O request records. A trace is the sequence of device-level requests one
// logical file operation produced; the multi-user simulator (sim/) replays
// several traces round-robin through a DiskModel to obtain the interleaved
// access times of the paper's figures 7 and 8.
#ifndef STEGFS_BLOCKDEV_IO_TRACE_H_
#define STEGFS_BLOCKDEV_IO_TRACE_H_

#include <cstdint>
#include <vector>

namespace stegfs {

struct IoRequest {
  uint64_t lba = 0;      // first block of the request
  uint32_t nblocks = 1;  // request length in blocks
  bool is_write = false;
};

using IoTrace = std::vector<IoRequest>;

// The cumulative `IoStats` counters that used to live here moved to the
// unified metrics layer: DiskModel keeps obs::Counter instruments and
// snapshots them as DiskModelStats (blockdev/disk_model.h). The old
// `cache_hits` field is now `drive_cache_hits` — it counts drive-segment
// hits in the mechanical model and never had anything to do with the
// BufferCache hit counters it collided with.

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_IO_TRACE_H_
