// I/O request records. A trace is the sequence of device-level requests one
// logical file operation produced; the multi-user simulator (sim/) replays
// several traces round-robin through a DiskModel to obtain the interleaved
// access times of the paper's figures 7 and 8.
#ifndef STEGFS_BLOCKDEV_IO_TRACE_H_
#define STEGFS_BLOCKDEV_IO_TRACE_H_

#include <cstdint>
#include <vector>

namespace stegfs {

struct IoRequest {
  uint64_t lba = 0;      // first block of the request
  uint32_t nblocks = 1;  // request length in blocks
  bool is_write = false;
};

using IoTrace = std::vector<IoRequest>;

// Cumulative device counters.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;
  uint64_t seeks = 0;          // requests that paid a mechanical seek
  uint64_t cache_hits = 0;     // requests served from a drive cache segment

  void Clear() { *this = IoStats(); }
};

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_IO_TRACE_H_
