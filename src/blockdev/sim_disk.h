// SimDisk: a BlockDevice decorator that (a) charges every request to a
// DiskModel, accumulating simulated wall-clock time, and (b) optionally
// records the request stream into an IoTrace for later interleaved replay.
//
// All benchmarks run the real file-system implementations against a SimDisk;
// "access time" in the reproduced figures is SimDisk model time, not host
// CPU time (the paper measures a real disk; we measure a modeled one).
#ifndef STEGFS_BLOCKDEV_SIM_DISK_H_
#define STEGFS_BLOCKDEV_SIM_DISK_H_

#include <memory>

#include "blockdev/block_device.h"
#include "blockdev/disk_model.h"
#include "blockdev/io_trace.h"

namespace stegfs {

class SimDisk : public BlockDevice {
 public:
  SimDisk(std::unique_ptr<BlockDevice> inner, const DiskModelConfig& config)
      : inner_(std::move(inner)),
        model_(config, inner_->block_size()) {}

  uint32_t block_size() const override { return inner_->block_size(); }
  uint64_t num_blocks() const override { return inner_->num_blocks(); }

  Status ReadBlock(uint64_t block, uint8_t* buf) override {
    Status s = inner_->ReadBlock(block, buf);
    if (!s.ok()) return s;
    Account({block, 1, /*is_write=*/false});
    return s;
  }

  Status WriteBlock(uint64_t block, const uint8_t* buf) override {
    Status s = inner_->WriteBlock(block, buf);
    if (!s.ok()) return s;
    Account({block, 1, /*is_write=*/true});
    return s;
  }

  Status Flush() override { return inner_->Flush(); }
  Status Sync() override { return inner_->Sync(); }
  uint64_t sync_count() const override { return inner_->sync_count(); }
  void set_flush_durability(FlushDurability mode) override {
    inner_->set_flush_durability(mode);
  }
  FlushDurability flush_durability() const override {
    return inner_->flush_durability();
  }

  // Total modeled service time of all requests so far.
  double sim_time_seconds() const { return sim_time_seconds_; }
  DiskModelStats stats() const { return model_.stats(); }
  DiskModel* model() { return &model_; }
  BlockDevice* inner() { return inner_.get(); }
  // Physical-I/O accounting belongs to the wrapped device.
  const DeviceMetrics* device_metrics() const override {
    return inner_->device_metrics();
  }

  // When non-null, every request is appended to *trace (in addition to being
  // charged). Caller keeps ownership; pass nullptr to stop recording.
  void set_trace(IoTrace* trace) { trace_ = trace; }

  // Zeroes accumulated time and model state. Benchmarks call this after
  // volume setup so measurements cover only the workload itself.
  void ResetClock() {
    sim_time_seconds_ = 0;
    model_.Reset();
  }

 private:
  void Account(const IoRequest& req) {
    sim_time_seconds_ += model_.AccessSeconds(req);
    if (trace_ != nullptr) trace_->push_back(req);
  }

  std::unique_ptr<BlockDevice> inner_;
  DiskModel model_;
  double sim_time_seconds_ = 0;
  IoTrace* trace_ = nullptr;
};

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_SIM_DISK_H_
