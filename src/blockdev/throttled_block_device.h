// ThrottledBlockDevice: a BlockDevice decorator that charges every request
// a real wall-clock latency (a sleep), turning an in-memory device into a
// stand-in for a storage device with per-request service time.
//
// The real-thread benchmarks (bench_concurrent_throughput, the --threads
// mode of bench_fig7_multiuser) need this: on a machine with few cores the
// aggregate-throughput gain from multithreading comes from OVERLAPPING
// device waits, exactly as it does on real disks — so the decorated device
// must actually wait, unlike SimDisk which only accounts virtual time.
//
// Thread-safety: the decorator adds no shared mutable state beyond atomic
// counters, so it is as thread-safe as the wrapped device. (MemBlockDevice
// is safe for concurrent access to distinct blocks; the buffer cache's
// per-shard locking already serializes same-block access.)
#ifndef STEGFS_BLOCKDEV_THROTTLED_BLOCK_DEVICE_H_
#define STEGFS_BLOCKDEV_THROTTLED_BLOCK_DEVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "blockdev/block_device.h"

namespace stegfs {

class ThrottledBlockDevice : public BlockDevice {
 public:
  // `inner` must outlive the decorator. Latencies are per whole-block
  // request; 0 disables the corresponding sleep. `sync_lat` charges every
  // Sync() barrier (the fdatasync stand-in the durable-write benches
  // need: group commit only pays off if barriers actually cost time).
  ThrottledBlockDevice(
      BlockDevice* inner, std::chrono::microseconds read_lat,
      std::chrono::microseconds write_lat,
      std::chrono::microseconds sync_lat = std::chrono::microseconds(0))
      : inner_(inner),
        read_lat_(read_lat),
        write_lat_(write_lat),
        sync_lat_(sync_lat) {}

  uint32_t block_size() const override { return inner_->block_size(); }
  uint64_t num_blocks() const override { return inner_->num_blocks(); }

  Status ReadBlock(uint64_t block, uint8_t* buf) override {
    if (read_lat_.count() > 0) std::this_thread::sleep_for(read_lat_);
    reads_.fetch_add(1, std::memory_order_relaxed);
    return inner_->ReadBlock(block, buf);
  }

  Status WriteBlock(uint64_t block, const uint8_t* buf) override {
    if (write_lat_.count() > 0) std::this_thread::sleep_for(write_lat_);
    writes_.fetch_add(1, std::memory_order_relaxed);
    return inner_->WriteBlock(block, buf);
  }

  Status Flush() override { return inner_->Flush(); }
  Status Sync() override {
    if (sync_lat_.count() > 0) std::this_thread::sleep_for(sync_lat_);
    syncs_.fetch_add(1, std::memory_order_relaxed);
    return inner_->Sync();
  }
  uint64_t sync_count() const override {
    return syncs_.load(std::memory_order_relaxed);
  }
  void set_flush_durability(FlushDurability mode) override {
    inner_->set_flush_durability(mode);
  }
  FlushDurability flush_durability() const override {
    return inner_->flush_durability();
  }

  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }

  // Physical-I/O accounting belongs to the wrapped device.
  const DeviceMetrics* device_metrics() const override {
    return inner_->device_metrics();
  }

 private:
  BlockDevice* inner_;
  std::chrono::microseconds read_lat_;
  std::chrono::microseconds write_lat_;
  std::chrono::microseconds sync_lat_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> syncs_{0};
};

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_THROTTLED_BLOCK_DEVICE_H_
