// Host-file-backed block device, used by the runnable examples so a StegFS
// volume persists across process runs (and so `steg_backup` has a real file
// to image).
//
// Thread-safe: the fseek+fread/fwrite pair on the shared FILE* is atomic
// under an internal mutex — required by the C API's thread-safe handle
// contract, since the sharded cache issues device I/O from many threads
// (same-shard requests serialize on the shard lock, cross-shard ones do
// not).
#ifndef STEGFS_BLOCKDEV_FILE_BLOCK_DEVICE_H_
#define STEGFS_BLOCKDEV_FILE_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "blockdev/block_device.h"
#include "util/statusor.h"

namespace stegfs {

class FileBlockDevice : public BlockDevice {
 public:
  // Creates (or truncates) a volume file of the given geometry.
  static StatusOr<std::unique_ptr<FileBlockDevice>> Create(
      const std::string& path, uint32_t block_size, uint64_t num_blocks);
  // Opens an existing volume file; geometry must match the file size.
  static StatusOr<std::unique_ptr<FileBlockDevice>> Open(
      const std::string& path, uint32_t block_size);

  ~FileBlockDevice() override;

  uint32_t block_size() const override { return block_size_; }
  uint64_t num_blocks() const override { return num_blocks_; }
  Status ReadBlock(uint64_t block, uint8_t* buf) override;
  Status WriteBlock(uint64_t block, const uint8_t* buf) override;
  // Vectored path: contiguous ascending runs inside the request are
  // coalesced into single seek+transfer host I/Os (gather/scatter through a
  // scratch buffer when the caller buffers aren't adjacent). One lock
  // acquisition per request instead of one per block.
  Status ReadBlocks(const BlockIoVec* iov, size_t n) override;
  Status WriteBlocks(const ConstBlockIoVec* iov, size_t n) override;
  DeviceBatchStats batch_stats() const override;
  Status Flush() override;

 private:
  FileBlockDevice(std::FILE* f, uint32_t block_size, uint64_t num_blocks)
      : file_(f), block_size_(block_size), num_blocks_(num_blocks) {}

  // Length (in blocks) of the contiguous ascending run starting at iov[i],
  // capped so one scratch transfer stays <= kMaxRunBytes.
  template <typename Vec>
  size_t RunLength(const Vec* iov, size_t n, size_t i) const;

  std::mutex mu_;  // makes each seek+transfer pair atomic
  std::FILE* file_;
  uint32_t block_size_;
  uint64_t num_blocks_;
  std::atomic<uint64_t> vectored_blocks_{0};
  std::atomic<uint64_t> coalesced_runs_{0};
};

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_FILE_BLOCK_DEVICE_H_
