// Host-file-backed block device, used by the runnable examples so a StegFS
// volume persists across process runs (and so `steg_backup` has a real file
// to image).
//
// Backed by a raw file descriptor and positional I/O (pread/pwrite), so:
//   - every transfer is atomic at the syscall level — no shared seek
//     pointer, no lock, any number of threads issue I/O concurrently
//     (the C API's thread-safe handle contract);
//   - the descriptor is coherent with the io_uring async engine
//     (blockdev/uring_block_device.h), which submits against the same fd
//     via file_descriptor() — there is no user-space stream buffer to go
//     stale under it;
//   - volumes larger than 2 GB address correctly (64-bit offsets, which
//     the previous long-based fseek path could not).
#ifndef STEGFS_BLOCKDEV_FILE_BLOCK_DEVICE_H_
#define STEGFS_BLOCKDEV_FILE_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "blockdev/block_device.h"
#include "util/statusor.h"

namespace stegfs {

class FileBlockDevice : public BlockDevice {
 public:
  // Creates (or truncates) a volume file of the given geometry.
  static StatusOr<std::unique_ptr<FileBlockDevice>> Create(
      const std::string& path, uint32_t block_size, uint64_t num_blocks);
  // Opens an existing volume file; geometry must match the file size.
  static StatusOr<std::unique_ptr<FileBlockDevice>> Open(
      const std::string& path, uint32_t block_size);

  ~FileBlockDevice() override;

  uint32_t block_size() const override { return block_size_; }
  uint64_t num_blocks() const override { return num_blocks_; }
  Status ReadBlock(uint64_t block, uint8_t* buf) override;
  Status WriteBlock(uint64_t block, const uint8_t* buf) override;
  // Vectored path: contiguous ascending runs inside the request are
  // coalesced into single positional host I/Os (gather/scatter through a
  // scratch buffer when the caller buffers aren't adjacent).
  Status ReadBlocks(const BlockIoVec* iov, size_t n) override;
  Status WriteBlocks(const ConstBlockIoVec* iov, size_t n) override;
  DeviceBatchStats batch_stats() const override;
  // fdatasync by default: a volume that survives `steg_unmount` must also
  // survive the power cut right after it (the PR 4 regression made this a
  // page-cache no-op; the crash-consistency subsystem reverses that).
  // set_flush_durability(kCacheOnly) restores the cheap behavior for
  // benchmarks that only measure the data path.
  Status Flush() override;
  // Unconditional fdatasync — the journal's write barrier.
  Status Sync() override;
  uint64_t sync_count() const override { return metrics_.syncs.value(); }
  const DeviceMetrics* device_metrics() const override { return &metrics_; }
  void set_flush_durability(FlushDurability mode) override {
    durability_.store(mode, std::memory_order_relaxed);
  }
  FlushDurability flush_durability() const override {
    return durability_.load(std::memory_order_relaxed);
  }

  // The io_uring engine attaches here (see block_device.h).
  int file_descriptor() const override { return fd_; }

 private:
  FileBlockDevice(int fd, uint32_t block_size, uint64_t num_blocks)
      : fd_(fd), block_size_(block_size), num_blocks_(num_blocks) {}

  // Length (in blocks) of the contiguous ascending run starting at iov[i],
  // capped so one scratch transfer stays <= kMaxRunBytes.
  template <typename Vec>
  size_t RunLength(const Vec* iov, size_t n, size_t i) const;

  int fd_;
  uint32_t block_size_;
  uint64_t num_blocks_;
  std::atomic<FlushDurability> durability_{FlushDurability::kDurable};
  DeviceMetrics metrics_;
};

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_FILE_BLOCK_DEVICE_H_
