#include "blockdev/thread_pool_async_device.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace stegfs {

namespace {

// Below this many blocks a slice is not worth a task dispatch.
constexpr size_t kMinSliceBlocks = 8;

size_t DefaultWorkers() {
  size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(2, std::min<size_t>(4, hw / 2));
}

}  // namespace

ThreadPoolAsyncDevice::ThreadPoolAsyncDevice(BlockDevice* base, size_t workers)
    : base_(base), pool_(workers == 0 ? DefaultWorkers() : workers) {}

ThreadPoolAsyncDevice::~ThreadPoolAsyncDevice() { Drain(); }

void ThreadPoolAsyncDevice::Finalize(const std::shared_ptr<Batch>& batch) {
  Status status = batch->Snapshot();
  if (!status.ok()) failed_batches_.Increment();
  completed_batches_.Increment();
  if (batch->submit_ns != 0) {
    batch_ns_.Record(obs::NowNanos() - batch->submit_ns);
  }
  // Callback first (before the ticket unblocks — the interface contract,
  // and before the counters drop so Drain() covers the callback), then
  // the counters, then the ticket: a waiter that returns from Wait() must
  // observe quiesced stats. Completing last is safe even against a
  // post-Drain destruction because the ticket state is independently
  // shared and this worker is joined by the pool's destructor.
  if (batch->done) batch->done(status);
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_batches_--;
    inflight_blocks_ -= batch->blocks;
    // Notify under the lock: once Drain() returns the engine may be
    // destroyed, so the condvar must not be touched after the counters
    // that release Drain() are published.
    drain_cv_.notify_all();
  }
  batch->completion.Complete(status);
}

template <typename Vec, typename Transfer>
IoTicket ThreadPoolAsyncDevice::Submit(std::vector<Vec> iov,
                                       IoCompletionFn done,
                                       Transfer transfer) {
  if (iov.empty()) {
    if (done) done(Status::OK());
    return IoTicket();
  }
  auto batch = std::make_shared<Batch>();
  batch->done = std::move(done);
  batch->blocks = iov.size();
  batch->submit_ns = obs::MetricsEnabled() ? obs::NowNanos() : 0;

  const size_t slices = std::max<size_t>(
      1, std::min(pool_.size(),
                  (iov.size() + kMinSliceBlocks - 1) / kMinSliceBlocks));
  batch->remaining.store(slices, std::memory_order_relaxed);

  submitted_batches_.Increment();
  submitted_blocks_.Add(iov.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_batches_++;
    inflight_blocks_ += iov.size();
  }

  IoTicket ticket = batch->completion.ticket();
  // The iov lives in one shared vector; each slice transfers a disjoint
  // [begin, end) range of it through the base device's vectored call.
  auto shared_iov = std::make_shared<std::vector<Vec>>(std::move(iov));
  const size_t n = shared_iov->size();
  const size_t per = (n + slices - 1) / slices;
  for (size_t s = 0; s < slices; ++s) {
    const size_t begin = s * per;
    const size_t end = std::min(n, begin + per);
    pool_.Submit([this, batch, shared_iov, begin, end, transfer] {
      batch->RecordError(transfer(shared_iov->data() + begin, end - begin));
      if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Finalize(batch);
      }
    });
  }
  return ticket;
}

IoTicket ThreadPoolAsyncDevice::SubmitRead(std::vector<BlockIoVec> iov,
                                           IoCompletionFn done) {
  return Submit(std::move(iov), std::move(done),
                [this](const BlockIoVec* v, size_t n) {
                  return base_->ReadBlocks(v, n);
                });
}

IoTicket ThreadPoolAsyncDevice::SubmitWrite(std::vector<ConstBlockIoVec> iov,
                                            IoCompletionFn done) {
  return Submit(std::move(iov), std::move(done),
                [this](const ConstBlockIoVec* v, size_t n) {
                  return base_->WriteBlocks(v, n);
                });
}

void ThreadPoolAsyncDevice::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return inflight_batches_ == 0; });
}

AsyncIoStats ThreadPoolAsyncDevice::stats() const {
  AsyncIoStats s;
  s.submitted_batches = submitted_batches_.value();
  s.submitted_blocks = submitted_blocks_.value();
  s.completed_batches = completed_batches_.value();
  s.failed_batches = failed_batches_.value();
  std::lock_guard<std::mutex> lock(mu_);
  s.inflight_blocks = inflight_blocks_;
  return s;
}

void ThreadPoolAsyncDevice::RegisterMetrics(obs::MetricsRegistry* reg) const {
  reg->RegisterCounter("stegfs_async_submitted_batches_total",
                       "Async batches submitted", &submitted_batches_);
  reg->RegisterCounter("stegfs_async_submitted_blocks_total",
                       "Async blocks submitted", &submitted_blocks_);
  reg->RegisterCounter("stegfs_async_completed_batches_total",
                       "Async batches completed", &completed_batches_);
  reg->RegisterCounter("stegfs_async_failed_batches_total",
                       "Async batches that completed with an error",
                       &failed_batches_);
  reg->RegisterHistogram("stegfs_async_batch_seconds",
                         "Async batch submit-to-finalize latency",
                         &batch_ns_);
}

}  // namespace stegfs
