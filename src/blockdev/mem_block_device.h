// RAM-backed block device used by all tests and simulations.
#ifndef STEGFS_BLOCKDEV_MEM_BLOCK_DEVICE_H_
#define STEGFS_BLOCKDEV_MEM_BLOCK_DEVICE_H_

#include <cstdint>
#include <vector>

#include "blockdev/block_device.h"

namespace stegfs {

class MemBlockDevice : public BlockDevice {
 public:
  // Storage is zero-initialized. block_size must be a power of two >= 512.
  MemBlockDevice(uint32_t block_size, uint64_t num_blocks);

  uint32_t block_size() const override { return block_size_; }
  uint64_t num_blocks() const override { return num_blocks_; }
  Status ReadBlock(uint64_t block, uint8_t* buf) override;
  Status WriteBlock(uint64_t block, const uint8_t* buf) override;
  Status Flush() override { return Status::OK(); }
  const DeviceMetrics* device_metrics() const override { return &metrics_; }

  // Direct access for tests and the deniability auditor (an "attacker" that
  // scans the raw disk image).
  const std::vector<uint8_t>& raw() const { return data_; }
  std::vector<uint8_t>* mutable_raw() { return &data_; }

 private:
  uint32_t block_size_;
  uint64_t num_blocks_;
  std::vector<uint8_t> data_;
  // Counters only — no latency timers on a memcpy-speed device.
  DeviceMetrics metrics_;
};

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_MEM_BLOCK_DEVICE_H_
