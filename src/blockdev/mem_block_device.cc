#include "blockdev/mem_block_device.h"

#include <cassert>
#include <cstring>

namespace stegfs {

MemBlockDevice::MemBlockDevice(uint32_t block_size, uint64_t num_blocks)
    : block_size_(block_size), num_blocks_(num_blocks) {
  assert(block_size >= 512 && (block_size & (block_size - 1)) == 0);
  data_.assign(static_cast<size_t>(block_size) * num_blocks, 0);
}

Status MemBlockDevice::ReadBlock(uint64_t block, uint8_t* buf) {
  if (block >= num_blocks_) {
    return Status::InvalidArgument("read past end of device");
  }
  metrics_.blocks_read.Increment();
  std::memcpy(buf, data_.data() + block * block_size_, block_size_);
  return Status::OK();
}

Status MemBlockDevice::WriteBlock(uint64_t block, const uint8_t* buf) {
  if (block >= num_blocks_) {
    return Status::InvalidArgument("write past end of device");
  }
  metrics_.blocks_written.Increment();
  std::memcpy(data_.data() + block * block_size_, buf, block_size_);
  return Status::OK();
}

}  // namespace stegfs
