// UringBlockDevice: the io_uring async engine — true kernel-asynchronous
// block I/O over a host-file descriptor (the one FileBlockDevice exposes).
//
// Every block of a batch becomes one submission-queue entry; a whole batch
// enters the kernel in O(1) syscalls instead of one seek+transfer pair per
// block, and a dedicated reaper thread collects completions so submitters
// return immediately. On multi-core hosts submissions are punted to the
// kernel's io-wq workers (IOSQE_ASYNC), so even page-cache-hot transfers
// proceed in parallel with the submitter's crypto work.
//
// Availability is decided twice:
//   - compile time: the backend builds only on Linux with
//     <linux/io_uring.h> present and STEGFS_DISABLE_URING unset (the CI
//     fallback job sets it); elsewhere Attach() reports NotSupported.
//   - run time: Attach() creates a ring via raw syscalls (no liburing
//     dependency) and proves it works with a probe read of block 0; a
//     kernel that lacks io_uring (or seccomp policy that filters it)
//     fails cleanly and the mount falls back to ThreadPoolAsyncDevice.
#ifndef STEGFS_BLOCKDEV_URING_BLOCK_DEVICE_H_
#define STEGFS_BLOCKDEV_URING_BLOCK_DEVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "blockdev/async_block_device.h"
#include "obs/metrics.h"
#include "util/statusor.h"

// Compile-time gate; runtime support is still probed by Attach().
#if defined(__linux__) && !defined(STEGFS_DISABLE_URING) && \
    defined(__has_include)
#if __has_include(<linux/io_uring.h>)
#define STEGFS_HAS_URING 1
#endif
#endif
#ifndef STEGFS_HAS_URING
#define STEGFS_HAS_URING 0
#endif

namespace stegfs {

class UringBlockDevice : public AsyncBlockDevice {
 public:
  // True when a ring can be created on this kernel (cheap setup+close).
  static bool Supported();

  // Attaches a ring to `fd` (not owned; must stay open for the engine's
  // lifetime). Probes the kernel with a real read of block 0 so callers
  // can trust an OK result; NotSupported when io_uring is unavailable.
  static StatusOr<std::unique_ptr<UringBlockDevice>> Attach(
      int fd, uint32_t block_size, uint64_t num_blocks);

  ~UringBlockDevice() override;  // drains, then stops the reaper

  uint32_t block_size() const override { return block_size_; }
  uint64_t num_blocks() const override { return num_blocks_; }
  const char* engine_name() const override { return "io_uring"; }

  IoTicket SubmitRead(std::vector<BlockIoVec> iov,
                      IoCompletionFn done = nullptr) override;
  IoTicket SubmitWrite(std::vector<ConstBlockIoVec> iov,
                       IoCompletionFn done = nullptr) override;

  void Drain() override;
  AsyncIoStats stats() const override;

  // Publishes the engine counters and the batch-latency histogram into
  // `reg` under stegfs_async_* names (stats() stays the legacy snapshot).
  void RegisterMetrics(obs::MetricsRegistry* reg) const override;

  // Registered-buffer arena: kArenaSpans spans of kArenaSpanBlocks blocks
  // each, page-aligned, registered as ONE kernel buffer at Attach (best
  // effort — an EPERM/ENOMEM from a tight RLIMIT_MEMLOCK simply leaves
  // the engine without an arena). In-arena submissions automatically use
  // IORING_OP_{READ,WRITE}_FIXED with the registered index.
  static constexpr size_t kArenaSpanBlocks = 64;  // = crypto sub-batch
  static constexpr size_t kArenaSpans = 16;
  uint8_t* AcquireArenaSpan(size_t blocks) override;
  void ReleaseArenaSpan(uint8_t* span) override;
  size_t arena_span_blocks() const override {
    return arena_base_ != nullptr ? kArenaSpanBlocks : 0;
  }

  // Read pool: a second region of the same registered buffer, sized for
  // the cache's miss batches (one span per cache shard with room to
  // spare, so concurrent read batches rarely contend). If the kernel
  // refuses the combined registration — pinned memory is charged against
  // RLIMIT_MEMLOCK — Attach retries with the staging arena alone: writes
  // keep their fixed path and reads fall back to caller buffers.
  static constexpr size_t kReadSpanBlocks = 64;
  static constexpr size_t kReadSpans = 48;
  uint8_t* AcquireReadSpan(size_t blocks) override;
  void ReleaseReadSpan(uint8_t* span) override;
  size_t read_span_blocks() const override {
    return read_pool_ ? kReadSpanBlocks : 0;
  }

 private:
  struct Ring;   // mmap'd SQ/CQ state — defined in the .cc
  struct Batch;  // one in-flight batch's completion state

  UringBlockDevice(std::unique_ptr<Ring> ring, int fd, uint32_t block_size,
                   uint64_t num_blocks);

  template <typename Vec>
  IoTicket Submit(std::vector<Vec> iov, IoCompletionFn done, bool write);
  void ReapLoop();
  // Runs the batch's callback and ticket (outside mu_), then frees it.
  void FinalizeBatch(Batch* batch, size_t blocks);

  std::unique_ptr<Ring> ring_;
  int fd_;
  uint32_t block_size_;
  uint64_t num_blocks_;
  // Punt ops to io-wq so transfers overlap the submitter (multi-core only;
  // on one core the punt is pure context-switch overhead).
  bool punt_async_;

  mutable std::mutex mu_;  // guards the SQ ring and the inflight counters
  std::condition_variable reap_cv_;   // reaper waits for work / shutdown
  std::condition_variable space_cv_;  // submitters wait for queue room
  std::condition_variable drain_cv_;  // Drain waits for quiescence
  uint64_t inflight_ops_ = 0;
  uint64_t inflight_batches_ = 0;
  uint64_t inflight_blocks_ = 0;
  bool stop_ = false;

  obs::Counter submitted_batches_;
  obs::Counter submitted_blocks_;
  obs::Counter completed_batches_;
  obs::Counter failed_batches_;
  obs::Counter fixed_buffer_ops_;
  obs::Counter fixed_buffer_read_ops_;
  obs::Histogram batch_ns_;  // submit -> finalize, per batch

  // Registered arena (null when registration failed or stub build).
  void SetupArena();
  uint8_t* arena_base_ = nullptr;
  size_t arena_bytes_ = 0;
  std::mutex arena_mu_;  // guards both free lists
  std::vector<uint8_t*> arena_free_;  // free staging-span list
  std::vector<uint8_t*> read_free_;   // free read-span list
  bool read_pool_ = false;  // combined registration succeeded

  std::thread reaper_;  // started last, joined in the destructor
};

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_URING_BLOCK_DEVICE_H_
