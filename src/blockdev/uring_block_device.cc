#include "blockdev/uring_block_device.h"

#include <algorithm>
#include <cstring>
#include <utility>

#if STEGFS_HAS_URING
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#endif

namespace stegfs {

// One in-flight batch (`remaining` counts ops); the op that drops it to
// zero finalizes per the AsyncBatchState contract.
struct UringBlockDevice::Batch : AsyncBatchState {};

#if STEGFS_HAS_URING

namespace {

// SQ depth of the ring; the kernel sizes the CQ at twice this. Batches
// bigger than the queue are submitted in chunks, so callers never see the
// limit.
constexpr unsigned kQueueDepth = 256;

int UringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int UringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
               unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

int UringRegister(int ring_fd, unsigned opcode, const void* arg,
                  unsigned nr_args) {
  return static_cast<int>(
      syscall(__NR_io_uring_register, ring_fd, opcode, arg, nr_args));
}

}  // namespace

// The mmap'd ring state. All raw syscalls — no liburing dependency.
struct UringBlockDevice::Ring {
  int fd = -1;
  unsigned sq_entries = 0;
  unsigned cq_entries = 0;
  // One CQE slot per in-flight op keeps the CQ from overflowing.
  unsigned max_inflight = 0;

  void* sq_map = nullptr;
  size_t sq_map_len = 0;
  void* cq_map = nullptr;  // == sq_map under IORING_FEAT_SINGLE_MMAP
  size_t cq_map_len = 0;
  struct io_uring_sqe* sqes = nullptr;
  size_t sqes_len = 0;

  unsigned* sq_head = nullptr;  // kernel-written consumer index
  unsigned* sq_tail = nullptr;  // our producer index
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;  // our consumer index
  unsigned* cq_tail = nullptr;  // kernel-written producer index
  unsigned* cq_mask = nullptr;
  struct io_uring_cqe* cqes = nullptr;

  ~Ring() {
    if (sqes != nullptr) munmap(sqes, sqes_len);
    if (cq_map != nullptr && cq_map != sq_map) munmap(cq_map, cq_map_len);
    if (sq_map != nullptr) munmap(sq_map, sq_map_len);
    if (fd >= 0) close(fd);
  }
};

bool UringBlockDevice::Supported() {
  struct io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  int fd = UringSetup(4, &p);
  if (fd < 0) return false;
  close(fd);
  return true;
}

StatusOr<std::unique_ptr<UringBlockDevice>> UringBlockDevice::Attach(
    int fd, uint32_t block_size, uint64_t num_blocks) {
  if (fd < 0) {
    return Status::NotSupported("device exposes no file descriptor");
  }
  auto ring = std::make_unique<Ring>();
  struct io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  ring->fd = UringSetup(kQueueDepth, &p);
  if (ring->fd < 0) {
    return Status::NotSupported("io_uring_setup failed (kernel support?)");
  }
  ring->sq_entries = p.sq_entries;
  ring->cq_entries = p.cq_entries;
  ring->max_inflight = p.cq_entries;

  ring->sq_map_len = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  ring->cq_map_len = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  if (p.features & IORING_FEAT_SINGLE_MMAP) {
    ring->sq_map_len = std::max(ring->sq_map_len, ring->cq_map_len);
    ring->cq_map_len = ring->sq_map_len;
  }
  ring->sq_map = mmap(nullptr, ring->sq_map_len, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_SQ_RING);
  if (ring->sq_map == MAP_FAILED) {
    ring->sq_map = nullptr;
    return Status::NotSupported("io_uring SQ ring mmap failed");
  }
  if (p.features & IORING_FEAT_SINGLE_MMAP) {
    ring->cq_map = ring->sq_map;
  } else {
    ring->cq_map =
        mmap(nullptr, ring->cq_map_len, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_CQ_RING);
    if (ring->cq_map == MAP_FAILED) {
      ring->cq_map = nullptr;
      return Status::NotSupported("io_uring CQ ring mmap failed");
    }
  }
  ring->sqes_len = p.sq_entries * sizeof(io_uring_sqe);
  void* sqes = mmap(nullptr, ring->sqes_len, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    return Status::NotSupported("io_uring SQE array mmap failed");
  }
  ring->sqes = static_cast<io_uring_sqe*>(sqes);

  char* sq = static_cast<char*>(ring->sq_map);
  ring->sq_head = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
  ring->sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  ring->sq_mask = reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  ring->sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
  char* cq = static_cast<char*>(ring->cq_map);
  ring->cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  ring->cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  ring->cq_mask = reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  ring->cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);

  std::unique_ptr<UringBlockDevice> dev(
      new UringBlockDevice(std::move(ring), fd, block_size, num_blocks));

  // Prove IORING_OP_READ works end to end (pre-5.6 kernels accept the
  // ring but reject the opcode) before anyone trusts the engine.
  if (num_blocks > 0) {
    std::vector<uint8_t> probe(block_size);
    IoTicket t = dev->SubmitRead({{0, probe.data()}});
    Status s = t.Wait();
    if (!s.ok()) {
      return Status::NotSupported("io_uring probe read failed: " +
                                  s.ToString());
    }
  }
  return dev;
}

UringBlockDevice::UringBlockDevice(std::unique_ptr<Ring> ring, int fd,
                                   uint32_t block_size, uint64_t num_blocks)
    : ring_(std::move(ring)),
      fd_(fd),
      block_size_(block_size),
      num_blocks_(num_blocks),
      punt_async_(std::thread::hardware_concurrency() >= 2) {
  SetupArena();
  reaper_ = std::thread([this] { ReapLoop(); });
}

UringBlockDevice::~UringBlockDevice() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  reap_cv_.notify_all();
  reaper_.join();
  if (arena_base_ != nullptr) {
    UringRegister(ring_->fd, IORING_UNREGISTER_BUFFERS, nullptr, 0);
    free(arena_base_);
  }
}

void UringBlockDevice::SetupArena() {
  // One page-aligned allocation registered as a single kernel buffer:
  // the write-staging spans first, then the read pool. Pinned pages are
  // charged against RLIMIT_MEMLOCK, so if the kernel refuses the
  // combined size we retry with the staging arena alone (writes keep
  // their fixed path, reads fall back to caller buffers); a second
  // refusal just leaves the engine without fixed-buffer support.
  const size_t staging_bytes =
      kArenaSpans * kArenaSpanBlocks * static_cast<size_t>(block_size_);
  const size_t combined_bytes =
      staging_bytes +
      kReadSpans * kReadSpanBlocks * static_cast<size_t>(block_size_);
  for (const size_t bytes : {combined_bytes, staging_bytes}) {
    void* base = nullptr;
    if (posix_memalign(&base, 4096, bytes) != 0) return;
    struct iovec reg;
    reg.iov_base = base;
    reg.iov_len = bytes;
    if (UringRegister(ring_->fd, IORING_REGISTER_BUFFERS, &reg, 1) != 0) {
      free(base);
      continue;
    }
    arena_base_ = static_cast<uint8_t*>(base);
    arena_bytes_ = bytes;
    arena_free_.reserve(kArenaSpans);
    const size_t span_bytes =
        kArenaSpanBlocks * static_cast<size_t>(block_size_);
    for (size_t i = 0; i < kArenaSpans; ++i) {
      arena_free_.push_back(arena_base_ + i * span_bytes);
    }
    if (bytes == combined_bytes) {
      read_pool_ = true;
      read_free_.reserve(kReadSpans);
      const size_t read_span_bytes =
          kReadSpanBlocks * static_cast<size_t>(block_size_);
      for (size_t i = 0; i < kReadSpans; ++i) {
        read_free_.push_back(arena_base_ + staging_bytes + i * read_span_bytes);
      }
    }
    return;
  }
}

uint8_t* UringBlockDevice::AcquireArenaSpan(size_t blocks) {
  if (arena_base_ == nullptr || blocks > kArenaSpanBlocks) return nullptr;
  std::lock_guard<std::mutex> lock(arena_mu_);
  if (arena_free_.empty()) return nullptr;
  uint8_t* span = arena_free_.back();
  arena_free_.pop_back();
  return span;
}

void UringBlockDevice::ReleaseArenaSpan(uint8_t* span) {
  if (span == nullptr) return;
  std::lock_guard<std::mutex> lock(arena_mu_);
  arena_free_.push_back(span);
}

uint8_t* UringBlockDevice::AcquireReadSpan(size_t blocks) {
  if (!read_pool_ || blocks > kReadSpanBlocks) return nullptr;
  std::lock_guard<std::mutex> lock(arena_mu_);
  if (read_free_.empty()) return nullptr;
  uint8_t* span = read_free_.back();
  read_free_.pop_back();
  return span;
}

void UringBlockDevice::ReleaseReadSpan(uint8_t* span) {
  if (span == nullptr) return;
  std::lock_guard<std::mutex> lock(arena_mu_);
  read_free_.push_back(span);
}

void UringBlockDevice::FinalizeBatch(Batch* batch, size_t blocks) {
  Status status = batch->Snapshot();
  if (!status.ok()) failed_batches_.Increment();
  completed_batches_.Increment();
  if (batch->submit_ns != 0) {
    batch_ns_.Record(obs::NowNanos() - batch->submit_ns);
  }
  // Callback first (before the ticket unblocks — the interface contract,
  // and before the counters drop so Drain() covers the callback), then
  // the counters, then the ticket: a waiter that returns from Wait() must
  // observe quiesced stats. Completing last is safe even against a
  // post-Drain destruction because the ticket state is independently
  // shared and the destructor joins this reaper thread.
  if (batch->done) batch->done(status);
  IoCompletion completion = batch->completion;
  delete batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_batches_--;
    inflight_blocks_ -= blocks;
    // Notify under the lock: once Drain() returns the engine may be
    // destroyed, so the condvar must not be touched after the counters
    // that release Drain() are published.
    drain_cv_.notify_all();
  }
  completion.Complete(status);
}

template <typename Vec>
IoTicket UringBlockDevice::Submit(std::vector<Vec> iov, IoCompletionFn done,
                                  bool write) {
  if (iov.empty()) {
    if (done) done(Status::OK());
    return IoTicket();
  }
  for (const Vec& v : iov) {
    if (v.block >= num_blocks_) {
      Status s = Status::InvalidArgument(write ? "write past end of device"
                                               : "read past end of device");
      if (done) done(s);
      return IoTicket::Ready(std::move(s));
    }
  }
  Batch* batch = new Batch;
  const size_t n = iov.size();
  batch->remaining.store(n, std::memory_order_relaxed);
  batch->done = std::move(done);
  batch->blocks = n;
  batch->submit_ns = obs::MetricsEnabled() ? obs::NowNanos() : 0;
  IoTicket ticket = batch->completion.ticket();

  submitted_batches_.Increment();
  submitted_blocks_.Add(n);
  // Punting to io-wq lets page-cache transfers run on other cores while
  // the submitter computes; worthless for tiny batches or one core.
  const uint8_t sqe_flags =
      (punt_async_ && n >= 8) ? IOSQE_ASYNC : 0;

  std::unique_lock<std::mutex> lock(mu_);
  inflight_batches_++;
  inflight_blocks_ += n;
  size_t i = 0;
  while (i < n) {
    while (inflight_ops_ >= ring_->max_inflight) {
      reap_cv_.notify_one();
      space_cv_.wait(lock);
    }
    const size_t chunk =
        std::min({static_cast<size_t>(ring_->max_inflight - inflight_ops_),
                  n - i, static_cast<size_t>(ring_->sq_entries)});
    const unsigned tail = *ring_->sq_tail;  // sole producer under mu_
    for (size_t j = 0; j < chunk; ++j) {
      const unsigned idx = (tail + static_cast<unsigned>(j)) & *ring_->sq_mask;
      io_uring_sqe* sqe = &ring_->sqes[idx];
      std::memset(sqe, 0, sizeof(*sqe));
      const uint8_t* buf_addr =
          reinterpret_cast<const uint8_t*>(iov[i + j].buf);
      // Buffers inside the registered arena skip the per-op page pin.
      const bool fixed =
          arena_base_ != nullptr && buf_addr >= arena_base_ &&
          buf_addr + block_size_ <= arena_base_ + arena_bytes_;
      if (fixed) {
        sqe->opcode = write ? IORING_OP_WRITE_FIXED : IORING_OP_READ_FIXED;
        sqe->buf_index = 0;
        fixed_buffer_ops_.Increment();
        if (!write) fixed_buffer_read_ops_.Increment();
      } else {
        sqe->opcode = write ? IORING_OP_WRITE : IORING_OP_READ;
      }
      sqe->flags = sqe_flags;
      sqe->fd = fd_;
      sqe->off = iov[i + j].block * static_cast<uint64_t>(block_size_);
      sqe->addr = reinterpret_cast<uint64_t>(iov[i + j].buf);
      sqe->len = block_size_;
      sqe->user_data = reinterpret_cast<uint64_t>(batch);
      ring_->sq_array[idx] = idx;
    }
    __atomic_store_n(ring_->sq_tail, tail + static_cast<unsigned>(chunk),
                     __ATOMIC_RELEASE);
    inflight_ops_ += chunk;
    size_t submitted = 0;
    while (submitted < chunk) {
      int ret = UringEnter(ring_->fd,
                           static_cast<unsigned>(chunk - submitted), 0, 0);
      if (ret >= 0) {
        submitted += static_cast<size_t>(ret);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EBUSY) {
        // Completion-side pressure: give the reaper the lock and retry.
        reap_cv_.notify_one();
        lock.unlock();
        std::this_thread::yield();
        lock.lock();
        continue;
      }
      // Hard submission failure on a probed ring (effectively impossible).
      // Rewind the unconsumed SQEs and fail every op that will never
      // produce a CQE; already-submitted ops finalize through the reaper.
      __atomic_store_n(ring_->sq_tail,
                       tail + static_cast<unsigned>(submitted),
                       __ATOMIC_RELEASE);
      const size_t lost = (chunk - submitted) + (n - (i + chunk));
      inflight_ops_ -= chunk - submitted;
      batch->RecordError(Status::IOError("io_uring_enter failed"));
      lock.unlock();
      reap_cv_.notify_one();
      if (batch->remaining.fetch_sub(lost, std::memory_order_acq_rel) ==
          lost) {
        FinalizeBatch(batch, n);
      }
      return ticket;
    }
    i += chunk;
  }
  lock.unlock();
  reap_cv_.notify_one();
  return ticket;
}

IoTicket UringBlockDevice::SubmitRead(std::vector<BlockIoVec> iov,
                                      IoCompletionFn done) {
  return Submit(std::move(iov), std::move(done), /*write=*/false);
}

IoTicket UringBlockDevice::SubmitWrite(std::vector<ConstBlockIoVec> iov,
                                       IoCompletionFn done) {
  return Submit(std::move(iov), std::move(done), /*write=*/true);
}

void UringBlockDevice::ReapLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    reap_cv_.wait(lock, [&] { return stop_ || inflight_ops_ > 0; });
    if (stop_ && inflight_ops_ == 0) return;
    lock.unlock();

    // Block until at least one completion is ready (returns immediately
    // when CQEs are already queued).
    int ret = UringEnter(ring_->fd, 0, 1, IORING_ENTER_GETEVENTS);
    if (ret < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) {
      // A broken wait would spin; yield so shutdown can still proceed.
      std::this_thread::yield();
    }

    // Reap everything queued. Finished batches finalize after the lock
    // drops (their callbacks take cache shard locks).
    struct Done {
      Batch* batch;
      size_t blocks;
    };
    std::vector<Done> finished;
    lock.lock();
    unsigned head = *ring_->cq_head;
    const unsigned tail = __atomic_load_n(ring_->cq_tail, __ATOMIC_ACQUIRE);
    unsigned reaped = 0;
    while (head != tail) {
      const io_uring_cqe* cqe = &ring_->cqes[head & *ring_->cq_mask];
      Batch* batch = reinterpret_cast<Batch*>(
          static_cast<uintptr_t>(cqe->user_data));
      if (cqe->res != static_cast<int32_t>(block_size_)) {
        batch->RecordError(Status::IOError(
            cqe->res < 0 ? "io_uring op failed"
                         : "short transfer through io_uring"));
      }
      if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        finished.push_back({batch, batch->blocks});
      }
      ++head;
      ++reaped;
    }
    __atomic_store_n(ring_->cq_head, head, __ATOMIC_RELEASE);
    inflight_ops_ -= reaped;
    lock.unlock();
    space_cv_.notify_all();
    for (const Done& d : finished) FinalizeBatch(d.batch, d.blocks);
  }
}

void UringBlockDevice::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return inflight_batches_ == 0; });
}

AsyncIoStats UringBlockDevice::stats() const {
  AsyncIoStats s;
  s.submitted_batches = submitted_batches_.value();
  s.submitted_blocks = submitted_blocks_.value();
  s.completed_batches = completed_batches_.value();
  s.failed_batches = failed_batches_.value();
  s.fixed_buffer_ops = fixed_buffer_ops_.value();
  s.fixed_buffer_read_ops = fixed_buffer_read_ops_.value();
  std::lock_guard<std::mutex> lock(mu_);
  s.inflight_blocks = inflight_blocks_;
  return s;
}

#else  // !STEGFS_HAS_URING

// Stub build (non-Linux, header missing, or STEGFS_DISABLE_URING): the
// class exists so callers can link, but attachment always reports
// NotSupported and the mount falls back to ThreadPoolAsyncDevice.
struct UringBlockDevice::Ring {};

bool UringBlockDevice::Supported() { return false; }

StatusOr<std::unique_ptr<UringBlockDevice>> UringBlockDevice::Attach(
    int fd, uint32_t block_size, uint64_t num_blocks) {
  (void)fd;
  (void)block_size;
  (void)num_blocks;
  return Status::NotSupported("io_uring backend not built in");
}

UringBlockDevice::UringBlockDevice(std::unique_ptr<Ring> ring, int fd,
                                   uint32_t block_size, uint64_t num_blocks)
    : ring_(std::move(ring)),
      fd_(fd),
      block_size_(block_size),
      num_blocks_(num_blocks),
      punt_async_(false) {}

UringBlockDevice::~UringBlockDevice() = default;

IoTicket UringBlockDevice::SubmitRead(std::vector<BlockIoVec> iov,
                                      IoCompletionFn done) {
  (void)iov;
  Status s = Status::NotSupported("io_uring backend not built in");
  if (done) done(s);
  return IoTicket::Ready(std::move(s));
}

IoTicket UringBlockDevice::SubmitWrite(std::vector<ConstBlockIoVec> iov,
                                       IoCompletionFn done) {
  (void)iov;
  Status s = Status::NotSupported("io_uring backend not built in");
  if (done) done(s);
  return IoTicket::Ready(std::move(s));
}

void UringBlockDevice::ReapLoop() {}
void UringBlockDevice::FinalizeBatch(Batch* batch, size_t blocks) {
  (void)batch;
  (void)blocks;
}
void UringBlockDevice::Drain() {}
AsyncIoStats UringBlockDevice::stats() const { return {}; }
void UringBlockDevice::SetupArena() {}
uint8_t* UringBlockDevice::AcquireArenaSpan(size_t blocks) {
  (void)blocks;
  return nullptr;
}
void UringBlockDevice::ReleaseArenaSpan(uint8_t* span) { (void)span; }
uint8_t* UringBlockDevice::AcquireReadSpan(size_t blocks) {
  (void)blocks;
  return nullptr;
}
void UringBlockDevice::ReleaseReadSpan(uint8_t* span) { (void)span; }

#endif  // STEGFS_HAS_URING

// Shared by the real and stub builds: the instruments exist either way
// (a stub engine just never bumps them).
void UringBlockDevice::RegisterMetrics(obs::MetricsRegistry* reg) const {
  reg->RegisterCounter("stegfs_async_submitted_batches_total",
                       "Async batches submitted", &submitted_batches_);
  reg->RegisterCounter("stegfs_async_submitted_blocks_total",
                       "Async blocks submitted", &submitted_blocks_);
  reg->RegisterCounter("stegfs_async_completed_batches_total",
                       "Async batches completed", &completed_batches_);
  reg->RegisterCounter("stegfs_async_failed_batches_total",
                       "Async batches that completed with an error",
                       &failed_batches_);
  reg->RegisterCounter("stegfs_async_fixed_buffer_ops_total",
                       "io_uring ops that used a registered buffer",
                       &fixed_buffer_ops_);
  reg->RegisterCounter("stegfs_async_fixed_buffer_read_ops_total",
                       "io_uring READ_FIXED ops staged through the read pool",
                       &fixed_buffer_read_ops_);
  reg->RegisterHistogram("stegfs_async_batch_seconds",
                         "Async batch submit-to-finalize latency",
                         &batch_ns_);
}

}  // namespace stegfs
