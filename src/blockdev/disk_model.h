// DiskModel: a mechanical-disk timing model calibrated to the paper's test
// hardware (Table 2: Ultra ATA/100, 20 GB, on a P4/1.6 GHz box, circa 2002).
//
// The paper's performance results are entirely driven by disk mechanics:
//   - sequential transfers run at the media rate,
//   - non-sequential requests pay seek + rotational latency,
//   - the drive's segmented look-ahead cache keeps a bounded number of
//     sequential streams cheap, which is why the native file system only
//     degrades to StegFS's level once enough concurrent users thrash the
//     segments (figure 7: reads converge at ~16 users, writes at ~8 — write
//     segments are scarcer).
// This model reproduces those mechanisms; absolute seconds are approximate,
// curve shapes and crossovers are the goal.
#ifndef STEGFS_BLOCKDEV_DISK_MODEL_H_
#define STEGFS_BLOCKDEV_DISK_MODEL_H_

#include <cstdint>
#include <list>

#include "blockdev/io_trace.h"
#include "obs/metrics.h"

namespace stegfs {

// Point-in-time snapshot of a DiskModel's request counters (the successor
// of the retired blockdev/io_trace.h IoStats). `drive_cache_hits` counts
// requests served from a modeled drive cache segment — renamed from the
// old `cache_hits`, which collided with the BufferCache's unrelated hit
// counters.
struct DiskModelStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;
  uint64_t seeks = 0;             // requests that paid a mechanical seek
  uint64_t drive_cache_hits = 0;  // requests served from a drive segment
};

struct DiskModelConfig {
  // Mechanics (typical 20 GB Ultra ATA/100 drive of the paper's era).
  double rpm = 7200.0;
  double track_to_track_seek_ms = 1.2;
  double full_stroke_seek_ms = 18.0;
  double media_transfer_mb_s = 40.0;      // sustained media rate
  double controller_overhead_ms = 0.3;    // per-request command overhead
  uint64_t capacity_bytes = 20ULL * 1000 * 1000 * 1000;  // Table 2: 20 GB

  // Segmented drive cache. A segment tracks one sequential stream; requests
  // continuing a tracked stream skip the seek + rotational penalty.
  int read_segments = 12;
  int write_segments = 6;

  double RotationMs() const { return 60000.0 / rpm; }
  double AvgRotationalLatencyMs() const { return RotationMs() / 2.0; }
};

// Stateful timing model. Not thread-safe; the simulator owns one per replay.
class DiskModel {
 public:
  DiskModel(const DiskModelConfig& config, uint32_t block_size);

  // Charges one request and advances head/cache state. Returns the service
  // time in seconds.
  double AccessSeconds(const IoRequest& req);

  // Drops cache/head state (e.g. between independent experiments).
  void Reset();

  DiskModelStats stats() const;
  const DiskModelConfig& config() const { return config_; }
  uint32_t block_size() const { return block_size_; }

  // Registers the model's instruments with `reg` under stegfs_simdisk_*
  // names (simulation harnesses that scrape; the model keeps ownership).
  void RegisterMetrics(obs::MetricsRegistry* reg) const;

 private:
  double SeekSeconds(uint64_t from_lba, uint64_t to_lba) const;
  double TransferSeconds(uint32_t nblocks) const;

  DiskModelConfig config_;
  uint32_t block_size_;
  uint64_t total_blocks_;
  uint64_t head_lba_ = 0;

  // LRU stream segments: front = most recent. Value is the next expected
  // LBA of the stream.
  std::list<uint64_t> read_streams_;
  std::list<uint64_t> write_streams_;

  obs::Counter reads_;
  obs::Counter writes_;
  obs::Counter blocks_read_;
  obs::Counter blocks_written_;
  obs::Counter seeks_;
  obs::Counter drive_cache_hits_;
};

}  // namespace stegfs

#endif  // STEGFS_BLOCKDEV_DISK_MODEL_H_
