// Shared benchmark plumbing: build a loaded volume for any scheme, capture
// per-operation I/O traces, and assemble per-user operation streams for the
// interleaved replays of figures 7-9.
#ifndef STEGFS_SIM_EXPERIMENT_H_
#define STEGFS_SIM_EXPERIMENT_H_

#include <memory>
#include <vector>

#include "baselines/file_store.h"
#include "blockdev/mem_block_device.h"
#include "blockdev/sim_disk.h"
#include "sim/workload.h"
#include "util/statusor.h"

namespace stegfs {
namespace sim {

struct BenchEnv {
  std::unique_ptr<SimDisk> disk;     // wraps the in-memory device
  std::unique_ptr<FileStore> store;  // scheme under test
  std::vector<WorkloadFile> files;   // the loaded population
  uint64_t load_failures = 0;        // files the scheme failed to store
};

// Formats a volume for `kind`, loads the Table 3 file population, resets
// the simulated clock. StegRand is expected to corrupt part of its own
// population at these densities — that is the scheme's documented flaw, and
// reads of corrupted files surface as capture failures later.
StatusOr<std::unique_ptr<BenchEnv>> BuildLoadedEnv(
    SchemeKind kind, const WorkloadConfig& workload,
    const FileStoreOptions& store_options);

struct CaptureResult {
  std::vector<IoTrace> traces;  // one per successful operation
  uint64_t failures = 0;        // operations the scheme could not complete
};

// Captures `count` whole-file read (or rewrite) operation traces against
// randomly chosen files.
CaptureResult CaptureReadOps(BenchEnv* env, int count, uint64_t seed);
CaptureResult CaptureWriteOps(BenchEnv* env, int count, uint64_t seed);

// Distributes a pool of operation traces round-robin over `users` streams,
// `ops_per_user` each (reusing pool entries cyclically).
std::vector<std::vector<IoTrace>> AssignOps(const std::vector<IoTrace>& pool,
                                            int users, int ops_per_user);

}  // namespace sim
}  // namespace stegfs

#endif  // STEGFS_SIM_EXPERIMENT_H_
