#include "sim/interleaver.h"

#include <cstddef>

namespace stegfs {
namespace sim {

ReplayResult ReplayInterleaved(
    const std::vector<std::vector<IoTrace>>& per_user_ops,
    const DiskModelConfig& disk_config, uint32_t block_size) {
  DiskModel model(disk_config, block_size);
  ReplayResult result;

  struct Cursor {
    size_t op = 0;
    size_t req = 0;
    double op_start = -1;
  };
  std::vector<Cursor> cursors(per_user_ops.size());

  double now = 0;
  bool any_active = true;
  while (any_active) {
    any_active = false;
    for (size_t u = 0; u < per_user_ops.size(); ++u) {
      Cursor& c = cursors[u];
      // Skip empty ops.
      while (c.op < per_user_ops[u].size() &&
             per_user_ops[u][c.op].empty()) {
        ++c.op;
      }
      if (c.op >= per_user_ops[u].size()) continue;
      any_active = true;

      const IoTrace& trace = per_user_ops[u][c.op];
      if (c.req == 0) c.op_start = now;
      now += model.AccessSeconds(trace[c.req]);
      ++result.requests;
      ++c.req;
      if (c.req == trace.size()) {
        result.op_latencies.push_back(now - c.op_start);
        ++c.op;
        c.req = 0;
      }
    }
  }

  result.total_seconds = now;
  if (!result.op_latencies.empty()) {
    double sum = 0;
    for (double l : result.op_latencies) sum += l;
    result.mean_latency = sum / result.op_latencies.size();
  }
  if (result.requests > 0) {
    result.mean_request_service = now / static_cast<double>(result.requests);
  }
  return result;
}

ReplayResult ReplaySerial(const std::vector<IoTrace>& ops,
                          const DiskModelConfig& disk_config,
                          uint32_t block_size) {
  return ReplayInterleaved({ops}, disk_config, block_size);
}

}  // namespace sim
}  // namespace stegfs
