// Multi-user replay: the paper's "interleaved" access pattern.
//
// Each user is a closed loop issuing file operations back-to-back; an
// operation is the I/O trace its file-system produced when executed. The
// interleaver replays the users' request streams round-robin (one request
// per turn) through a fresh DiskModel, which is what a disk's request queue
// sees when K processes do file I/O concurrently. "Access time" of an
// operation = completion of its last request - issue of its first request,
// i.e. wall-clock latency including time consumed by other users' requests
// (exactly the paper's figure 7/8 metric).
#ifndef STEGFS_SIM_INTERLEAVER_H_
#define STEGFS_SIM_INTERLEAVER_H_

#include <cstdint>
#include <vector>

#include "blockdev/disk_model.h"
#include "blockdev/io_trace.h"

namespace stegfs {
namespace sim {

struct ReplayResult {
  double total_seconds = 0;           // makespan of the whole replay
  std::vector<double> op_latencies;   // per-operation access times
  double mean_latency = 0;
  double mean_request_service = 0;    // avg per-request service time
  uint64_t requests = 0;
};

// per_user_ops[u] is the ordered list of operation traces user u performs.
ReplayResult ReplayInterleaved(
    const std::vector<std::vector<IoTrace>>& per_user_ops,
    const DiskModelConfig& disk_config, uint32_t block_size);

// Convenience: one user running ops serially (figure 9's pattern).
ReplayResult ReplaySerial(const std::vector<IoTrace>& ops,
                          const DiskModelConfig& disk_config,
                          uint32_t block_size);

}  // namespace sim
}  // namespace stegfs

#endif  // STEGFS_SIM_INTERLEAVER_H_
