#include "sim/space.h"

#include <vector>

#include "util/random.h"

namespace stegfs {
namespace sim {

double StegRandSpaceUtilization(const StegRandSpaceConfig& config) {
  const uint64_t num_blocks = config.volume_bytes / config.block_size;
  double total_util = 0;

  for (int trial = 0; trial < config.trials; ++trial) {
    Xoshiro rng(config.seed + trial * 7919);

    // owner[addr] = packed (file_id << 24 | block_index)... too narrow for
    // large files; use two parallel arrays instead.
    std::vector<uint32_t> owner_file(num_blocks, UINT32_MAX);
    std::vector<uint32_t> owner_block(num_blocks, 0);
    // survivors[f][i] = live replicas of block i of file f.
    std::vector<std::vector<uint16_t>> survivors;

    uint64_t loaded_bytes = 0;
    bool corrupted = false;
    while (!corrupted) {
      uint64_t file_bytes =
          rng.UniformRange(config.file_size_min, config.file_size_max);
      uint32_t file_id = static_cast<uint32_t>(survivors.size());
      uint64_t file_blocks =
          (file_bytes + config.block_size - 1) / config.block_size;
      survivors.emplace_back(file_blocks, 0);

      for (uint32_t r = 0; r < config.replication; ++r) {
        for (uint64_t i = 0; i < file_blocks; ++i) {
          uint64_t addr = rng.Uniform(num_blocks);
          // Evict the live occupant, if any.
          uint32_t of = owner_file[addr];
          if (of != UINT32_MAX) {
            uint32_t ob = owner_block[addr];
            if (--survivors[of][ob] == 0 && of != file_id) {
              // An already-loaded file just lost the last replica of one of
              // its blocks: the volume has passed its safe limit. (Losses
              // within the file being loaded are checked after its own
              // remaining replicas land.)
              corrupted = true;
            }
          }
          owner_file[addr] = file_id;
          owner_block[addr] = static_cast<uint32_t>(i);
          ++survivors[file_id][i];
        }
      }
      // Self-check: the freshly loaded file must have >= 1 surviving
      // replica of every block, or it was dead on arrival.
      for (uint16_t s : survivors[file_id]) {
        if (s == 0) corrupted = true;
      }
      if (!corrupted) loaded_bytes += file_bytes;
    }
    total_util +=
        static_cast<double>(loaded_bytes) / config.volume_bytes;
  }
  return total_util / config.trials;
}

double StegRandIdaSpaceUtilization(const StegRandIdaSpaceConfig& config) {
  const uint64_t num_blocks = config.volume_bytes / config.block_size;
  const int m = config.ida_m;
  const int n = config.ida_n;
  double total_util = 0;

  for (int trial = 0; trial < config.trials; ++trial) {
    Xoshiro rng(config.seed + trial * 104729);

    // owner maps device block -> (file, stripe) of the LIVE fragment there.
    std::vector<uint32_t> owner_file(num_blocks, UINT32_MAX);
    std::vector<uint32_t> owner_stripe(num_blocks, 0);
    // survivors[f][s] = live fragments of stripe s of file f.
    std::vector<std::vector<uint16_t>> survivors;

    uint64_t loaded_bytes = 0;
    bool corrupted = false;
    while (!corrupted) {
      uint64_t file_bytes =
          rng.UniformRange(config.file_size_min, config.file_size_max);
      uint32_t file_id = static_cast<uint32_t>(survivors.size());
      uint64_t file_blocks =
          (file_bytes + config.block_size - 1) / config.block_size;
      uint64_t stripes = (file_blocks + m - 1) / m;
      survivors.emplace_back(stripes, 0);

      for (uint64_t s = 0; s < stripes; ++s) {
        for (int frag = 0; frag < n; ++frag) {
          uint64_t addr = rng.Uniform(num_blocks);
          uint32_t of = owner_file[addr];
          if (of != UINT32_MAX) {
            uint32_t os = owner_stripe[addr];
            if (--survivors[of][os] < m && of != file_id) {
              // A loaded file's stripe dropped below the reconstruction
              // threshold: past the safe limit.
              corrupted = true;
            }
          }
          owner_file[addr] = file_id;
          owner_stripe[addr] = static_cast<uint32_t>(s);
          ++survivors[file_id][s];
        }
      }
      for (uint16_t s : survivors[file_id]) {
        if (s < m) corrupted = true;  // dead on arrival
      }
      if (!corrupted) loaded_bytes += file_bytes;
    }
    total_util += static_cast<double>(loaded_bytes) / config.volume_bytes;
  }
  return total_util / config.trials;
}

double StegCoverSpaceUtilization(uint64_t file_size_min,
                                 uint64_t file_size_max,
                                 uint64_t cover_size) {
  // One file per cover on average (Anderson capacity); each file fills
  // size/cover_size of its slot.
  double mean_size =
      (static_cast<double>(file_size_min) + file_size_max) / 2.0;
  return mean_size / static_cast<double>(cover_size);
}

double StegFsSpaceUtilization(const StegFsSpaceConfig& config) {
  uint64_t num_blocks = config.volume_bytes / config.block_size;
  // Metadata: superblock + bitmap + inode table (auto-sized as in PlainFs).
  uint32_t num_inodes = static_cast<uint32_t>(
      std::min<uint64_t>(std::max<uint64_t>(num_blocks / 64, 256), 262144));
  Layout layout =
      Layout::Compute(config.block_size, num_blocks, num_inodes);
  uint64_t data_blocks = layout.data_blocks();

  double abandoned = static_cast<double>(data_blocks) *
                     config.params.abandoned_fraction;
  double dummy_blocks =
      static_cast<double>(config.params.dummy_file_count) *
      config.params.dummy_file_avg_bytes / config.block_size;

  // Per-file overhead: header + free pool (~max/2 steady state) + inode
  // (indirect pointer) blocks ~ size / (block_size/4 pointers per block).
  double file_blocks =
      static_cast<double>(config.file_size_avg) / config.block_size;
  double ptrs_per_block = config.block_size / 4.0;
  double per_file_overhead = 1.0 +                      // header
                             config.params.free_pool_max / 2.0 +
                             file_blocks / ptrs_per_block + 2;
  double per_file_total = file_blocks + per_file_overhead;

  double usable = static_cast<double>(data_blocks) - abandoned -
                  dummy_blocks * (1 + config.params.free_pool_max / 64.0);
  if (usable < 0) return 0;
  double num_files = usable / per_file_total;
  double data_bytes = num_files * config.file_size_avg;
  return data_bytes / config.volume_bytes;
}

}  // namespace sim
}  // namespace stegfs
