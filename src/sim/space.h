// Space-utilization experiments (paper section 5.2 and figure 6).
#ifndef STEGFS_SIM_SPACE_H_
#define STEGFS_SIM_SPACE_H_

#include <cstdint>

#include "fs/layout.h"

namespace stegfs {
namespace sim {

// Figure 6: StegRand's effective space utilization for a replication
// factor. Monte-Carlo at address granularity (content is irrelevant to
// space): files are loaded one at a time, every block of every replica
// lands on a uniformly random device block, and loading stops the moment
// any already-loaded file has a block with zero surviving replicas. Returns
// bytes(fully loaded, uncorrupted files) / volume bytes.
struct StegRandSpaceConfig {
  uint64_t volume_bytes = 1ULL << 30;
  uint32_t block_size = 1024;
  uint32_t replication = 4;
  uint64_t file_size_min = (1 << 20) + 1;
  uint64_t file_size_max = 2 << 20;
  uint64_t seed = 0x52414e44;
  int trials = 3;  // averaged
};
double StegRandSpaceUtilization(const StegRandSpaceConfig& config);

// Section 5.2's StegCover analysis: with file sizes uniform in
// (min, max] and covers sized to the largest file, utilization is
// E[size]/max — 75% for (1,2] MB files and 2 MB covers.
double StegCoverSpaceUtilization(uint64_t file_size_min,
                                 uint64_t file_size_max,
                                 uint64_t cover_size);

// Extension experiment (paper section 2, Hand & Roscoe's Mnemosyne): the
// random-placement scheme with Rabin's IDA instead of replication. Each
// stripe of m data blocks becomes n coded blocks (any m recover); loading
// stops when a loaded file has a stripe with fewer than m surviving
// fragments. Storage blow-up is n/m instead of r.
struct StegRandIdaSpaceConfig {
  uint64_t volume_bytes = 1ULL << 30;
  uint32_t block_size = 1024;
  int ida_m = 4;
  int ida_n = 8;
  uint64_t file_size_min = (1 << 20) + 1;
  uint64_t file_size_max = 2 << 20;
  uint64_t seed = 0x49444121;
  int trials = 3;
};
double StegRandIdaSpaceUtilization(const StegRandIdaSpaceConfig& config);

// StegFS overhead accounting (section 5.2): fraction of the volume usable
// for unique data after metadata, abandoned blocks, dummy files and
// per-file free pools + headers + inode blocks.
struct StegFsSpaceConfig {
  uint64_t volume_bytes = 1ULL << 30;
  uint32_t block_size = 1024;
  StegParams params;  // Table 1 defaults
  uint64_t file_size_avg = 1536 << 10;  // E[(1,2] MB] = 1.5 MB
};
double StegFsSpaceUtilization(const StegFsSpaceConfig& config);

}  // namespace sim
}  // namespace stegfs

#endif  // STEGFS_SIM_SPACE_H_
