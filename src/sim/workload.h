// Workload generation per the paper's Table 3:
//   block size 1 KB, 1 GB volume, 100 files, sizes uniform (1, 2] MB,
//   interleaved access pattern, 1..32 concurrent users.
#ifndef STEGFS_SIM_WORKLOAD_H_
#define STEGFS_SIM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace stegfs {
namespace sim {

struct WorkloadConfig {
  uint32_t block_size = 1024;              // Table 3: 1 KB
  uint64_t volume_bytes = 1ULL << 30;      // Table 3: 1 GB
  uint32_t num_files = 100;                // Table 3: 100 files
  uint64_t file_size_min = (1 << 20) + 1;  // sizes uniform (1, 2] MB
  uint64_t file_size_max = 2 << 20;
  int num_users = 1;                       // Table 3 default
  uint64_t seed = 0x57100ad;
};

struct WorkloadFile {
  std::string name;
  std::string key;
  uint64_t size = 0;
};

// Deterministic file population for a config.
std::vector<WorkloadFile> GenerateFiles(const WorkloadConfig& config);

// Deterministic content for a file (same (name,size,seed) -> same bytes).
std::string FileContent(const WorkloadFile& file, uint64_t seed);

}  // namespace sim
}  // namespace stegfs

#endif  // STEGFS_SIM_WORKLOAD_H_
