#include "sim/experiment.h"

namespace stegfs {
namespace sim {

StatusOr<std::unique_ptr<BenchEnv>> BuildLoadedEnv(
    SchemeKind kind, const WorkloadConfig& workload,
    const FileStoreOptions& store_options) {
  auto env = std::make_unique<BenchEnv>();
  uint64_t num_blocks = workload.volume_bytes / workload.block_size;
  env->disk = std::make_unique<SimDisk>(
      std::make_unique<MemBlockDevice>(workload.block_size, num_blocks),
      DiskModelConfig{});
  STEGFS_ASSIGN_OR_RETURN(
      env->store, CreateFileStore(kind, env->disk.get(), store_options));
  env->files = GenerateFiles(workload);

  for (const WorkloadFile& f : env->files) {
    Status s =
        env->store->WriteFile(f.name, f.key, FileContent(f, workload.seed));
    if (!s.ok()) {
      // NoSpace (cover group at capacity, volume full) is a scheme
      // property, not a harness bug — count and continue.
      ++env->load_failures;
    }
  }
  STEGFS_RETURN_IF_ERROR(env->store->Flush());
  env->disk->ResetClock();
  return env;
}

CaptureResult CaptureReadOps(BenchEnv* env, int count, uint64_t seed) {
  CaptureResult result;
  Xoshiro rng(seed);
  int attempts = 0;
  const int max_attempts = count * 4;
  while (static_cast<int>(result.traces.size()) < count &&
         attempts++ < max_attempts) {
    const WorkloadFile& f = env->files[rng.Uniform(env->files.size())];
    IoTrace trace;
    env->disk->set_trace(&trace);
    auto data = env->store->ReadFile(f.name, f.key);
    env->disk->set_trace(nullptr);
    if (data.ok()) {
      result.traces.push_back(std::move(trace));
    } else {
      ++result.failures;  // e.g. StegRand DataLoss
    }
  }
  return result;
}

CaptureResult CaptureWriteOps(BenchEnv* env, int count, uint64_t seed) {
  CaptureResult result;
  Xoshiro rng(seed);
  for (int i = 0; i < count; ++i) {
    const WorkloadFile& f = env->files[rng.Uniform(env->files.size())];
    // Rewrite with fresh same-size content (the paper's write op).
    std::string content = FileContent(f, seed + i + 1);
    IoTrace trace;
    env->disk->set_trace(&trace);
    Status s = env->store->WriteFile(f.name, f.key, content);
    env->disk->set_trace(nullptr);
    if (s.ok()) {
      result.traces.push_back(std::move(trace));
    } else {
      ++result.failures;
    }
  }
  return result;
}

std::vector<std::vector<IoTrace>> AssignOps(const std::vector<IoTrace>& pool,
                                            int users, int ops_per_user) {
  std::vector<std::vector<IoTrace>> streams(users);
  if (pool.empty()) return streams;
  size_t next = 0;
  for (int u = 0; u < users; ++u) {
    streams[u].reserve(ops_per_user);
    for (int i = 0; i < ops_per_user; ++i) {
      streams[u].push_back(pool[next % pool.size()]);
      ++next;
    }
  }
  return streams;
}

}  // namespace sim
}  // namespace stegfs
