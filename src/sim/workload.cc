#include "sim/workload.h"

namespace stegfs {
namespace sim {

std::vector<WorkloadFile> GenerateFiles(const WorkloadConfig& config) {
  Xoshiro rng(config.seed);
  std::vector<WorkloadFile> files;
  files.reserve(config.num_files);
  for (uint32_t i = 0; i < config.num_files; ++i) {
    WorkloadFile f;
    f.name = "file-" + std::to_string(i);
    f.key = "key-" + std::to_string(i);
    f.size = rng.UniformRange(config.file_size_min, config.file_size_max);
    files.push_back(std::move(f));
  }
  return files;
}

std::string FileContent(const WorkloadFile& file, uint64_t seed) {
  Xoshiro rng(seed ^ std::hash<std::string>{}(file.name));
  std::string content(file.size, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(content.data()), content.size());
  return content;
}

}  // namespace sim
}  // namespace stegfs
