// RedundancyManager: per-object IDA share bookkeeping and self-healing
// (PR 6). The paper's availability weakness is that hidden blocks look
// free to plain allocations and can be silently overwritten; StegFS
// bounds the loss statistically with replication it never integrates into
// the data path. Here redundancy IS the data path:
//
//   - Share placement is systematic: the k data shares of stripe s are
//     the object's file blocks [s*k, (s+1)*k) exactly as the inode maps
//     them (layout unchanged), and the n-k parity shares are pool-
//     allocated blocks, FAK-encrypted like everything else the object
//     owns — indistinguishable from data, dummies, or abandoned blocks.
//   - A per-stripe map entry records the parity block addresses plus a
//     fast checksum of every share's plaintext. The map serializes into a
//     chain of FAK-encrypted blocks referenced by the hidden header
//     (HiddenHeader::red_map_block); each Persist writes a FRESH chain
//     and frees the old one through the allocator, so the chain the
//     committed header references is never rewritten in place (the same
//     no-overwrite rule the durable commit protocol imposes on data).
//   - Reads verify each share against its checksum AND the bitmap (a
//     cleared bit is evidence the block was reclaimed); a lost share is
//     healed by decoding the stripe from any k intact shares and
//     re-dispersing onto fresh pool blocks. The lost block itself is
//     NEVER freed — it may now belong to a plain file, and from the
//     bitmap alone stolen-by-plain and corrupted-in-place are
//     indistinguishable, so the old block is simply abandoned.
#ifndef STEGFS_CORE_REDUNDANCY_H_
#define STEGFS_CORE_REDUNDANCY_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/hidden_header.h"
#include "fs/bitmap.h"
#include "fs/file_io.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

// Volume-wide share accounting, shared by every hidden object of a mount
// (obs::Counter keeps the old atomic .load() call sites source-compatible;
// surfaced through steg_stats and the metrics registry).
struct RedundancyStats {
  obs::Counter stripes_encoded;   // parity (re)computations
  obs::Counter shares_written;    // parity share blocks written
  obs::Counter degraded_reads;    // stripes found degraded on read
  obs::Counter shares_healed;     // shares re-dispersed
  obs::Counter verify_failures;   // share checksum/bitmap flunks
  obs::Histogram decode_ns;       // IDA stripe decode latency
  obs::Histogram heal_ns;         // full stripe heal latency

  void RegisterWith(obs::MetricsRegistry* reg) const {
    reg->RegisterCounter("stegfs_red_stripes_encoded_total",
                         "Parity (re)computations", &stripes_encoded);
    reg->RegisterCounter("stegfs_red_shares_written_total",
                         "Parity share blocks written", &shares_written);
    reg->RegisterCounter("stegfs_red_degraded_reads_total",
                         "Stripes found degraded on read", &degraded_reads);
    reg->RegisterCounter("stegfs_red_shares_healed_total",
                         "Shares re-dispersed", &shares_healed);
    reg->RegisterCounter("stegfs_red_verify_failures_total",
                         "Share checksum/bitmap verification failures",
                         &verify_failures);
    reg->RegisterHistogram("stegfs_red_decode_seconds",
                           "IDA stripe decode latency", &decode_ns);
    reg->RegisterHistogram("stegfs_red_heal_seconds",
                           "Full stripe heal latency", &heal_ns);
  }
};

// Per-object scrub outcome (fsck accumulates these across objects).
struct RedundancyScrubReport {
  uint64_t stripes_checked = 0;
  uint64_t degraded_stripes = 0;
  uint64_t healed_shares = 0;
  uint64_t unrecoverable_stripes = 0;
};

// Fast non-cryptographic content checksum for share verification. An
// adversary cannot forge share content anyway (shares are FAK-encrypted;
// any tamper decrypts to noise), so 32 mixed bits suffice to detect loss.
inline uint32_t BlockSum32(const uint8_t* p, size_t n) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ (n * 0xff51afd7ed558ccdULL);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h ^= w * 0xff51afd7ed558ccdULL;
    h = (h << 27 | h >> 37) * 0x9e3779b97f4a7c15ULL;
  }
  if (i < n) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, n - i);
    h ^= w * 0xff51afd7ed558ccdULL;
    h = (h << 27 | h >> 37) * 0x9e3779b97f4a7c15ULL;
  }
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 29;
  return static_cast<uint32_t>(h ^ (h >> 32));
}

class RedundancyManager : public ExtentRedundancy {
 public:
  // `bitmap` (for reclaim evidence) and `stats` may be null (tests).
  RedundancyManager(RedundancyPolicy policy, uint32_t block_size,
                    BlockBitmap* bitmap, RedundancyStats* stats);

  const RedundancyPolicy& policy() const { return policy_; }

  // Loads the stripe map from the chain starting at `first_block` (0 =
  // empty map). A corrupt or torn chain degrades gracefully: coverage is
  // dropped (reads skip verification, data shares remain intact because
  // the code is systematic) and the next scrub rebuilds it; the orphaned
  // chain blocks are abandoned, never freed.
  Status Load(uint32_t first_block, BlockStore* store);

  // Writes the stripe map to a fresh chain of blocks from `alloc` and
  // frees the previous chain through it. Returns the new chain head (0
  // when the map is empty). Clears dirty().
  StatusOr<uint32_t> Persist(BlockStore* store, BlockAllocator* alloc);

  // True when the in-memory map has changes the header's chain does not.
  bool dirty() const { return dirty_; }

  // Full-object audit: verifies every share of every stripe, heals what
  // it can (including rebuilding coverage lost with a corrupt map chain),
  // and reports what it found. Unrecoverable stripes are reported, not
  // fatal — the rest of the object still heals.
  Status Scrub(const RedundancyIoCtx& ctx, RedundancyScrubReport* report);

  // Frees every parity and map-chain block through `alloc` (object
  // removal). The manager is empty afterwards.
  Status ReleaseAll(BlockAllocator* alloc);

  // ExtentRedundancy:
  Status OnExtentRead(const RedundancyIoCtx& ctx, ReadBlockRef* refs,
                      size_t count) override;
  Status OnExtentWrite(const RedundancyIoCtx& ctx, uint64_t first_idx,
                       uint64_t last_idx) override;
  Status OnTruncate(const RedundancyIoCtx& ctx,
                    uint64_t new_file_blocks) override;

  // Test introspection: device block of every share of stripe `s` in
  // share order (data 0..k-1 then parity; 0 = hole / unallocated).
  Status ShareBlocksForTesting(const RedundancyIoCtx& ctx, uint64_t s,
                               std::vector<uint64_t>* out);
  uint64_t StripeCountForTesting() const { return stripes_.size(); }

 private:
  struct Stripe {
    uint32_t present = 0;          // data shares whose checksum is current
    std::vector<uint32_t> parity;  // n-k parity device blocks (0 = none)
    std::vector<uint32_t> sums;    // n share checksums (data, then parity)
  };

  // One gathered share during heal/scrub: its content and whether the
  // checksum + bitmap evidence say it survived.
  struct GatheredShare {
    uint8_t index = 0;
    bool device_backed = false;  // false: logical hole (content zeros)
    bool valid = false;
    uint64_t device_block = 0;
    std::vector<uint8_t> content;
  };

  uint64_t FileBlocks(const Inode& inode) const;
  uint64_t StripesNeeded(uint64_t file_blocks) const;
  void EnsureStripes(uint64_t count);
  bool BlockLost(uint64_t device_block) const;

  // Reads every share of stripe `s` and classifies it.
  Status GatherStripe(const RedundancyIoCtx& ctx, uint64_t s,
                      std::vector<GatheredShare>* out);
  // Recomputes parity for stripe `s` from its current data blocks,
  // allocating parity blocks as needed. [touched_first, touched_last] is
  // the file-block range the caller just (re)wrote: those shares are
  // trusted as-is, while every OTHER share of the stripe is verified
  // against the old stripe record first — a stale sibling folded into
  // fresh parity would silently poison the whole stripe (the RAID-5
  // write hole). A stale sibling is recovered from the OLD codeword
  // (untouched shares + old parity) and re-dispersed before encoding;
  // when fewer than k old shares survive, DataLoss returns and the old
  // record is kept so detection is preserved. The defaults mark the
  // whole stripe touched (full trust — scrub's coverage rebuild).
  Status EncodeStripe(const RedundancyIoCtx& ctx, uint64_t s,
                      uint64_t touched_first = 0,
                      uint64_t touched_last = ~0ULL);
  // Reconstructs stripe `s` from any k intact shares and re-disperses the
  // lost ones onto fresh blocks. `healed` counts re-dispersed shares.
  // DataLoss when fewer than k shares survive.
  Status HealStripe(const RedundancyIoCtx& ctx, uint64_t s,
                    uint64_t* healed);

  RedundancyPolicy policy_;
  uint32_t block_size_;
  BlockBitmap* bitmap_;
  RedundancyStats* stats_;
  std::vector<Stripe> stripes_;
  std::vector<uint32_t> chain_;  // current persisted map chain
  bool dirty_ = false;
};

}  // namespace stegfs

#endif  // STEGFS_CORE_REDUNDANCY_H_
