#include "core/redundancy.h"

#include "obs/trace.h"

#include <algorithm>
#include <cstring>

#include "crypto/gf256.h"
#include "util/coding.h"

namespace stegfs {

namespace {
// Map chain block layout: [next u32][sum u32][payload block_size-8].
// `sum` covers the whole payload area (slack is zero), so a torn chain
// block is detected and coverage degrades instead of producing garbage
// checksums that would fail good shares.
constexpr size_t kChainHeaderBytes = 8;
// Sanity ceiling on the stripe count decoded from a chain (a 32-bit
// mapper cannot address more file blocks than this anyway).
constexpr uint32_t kMaxStripeCount = 1u << 24;
}  // namespace

RedundancyManager::RedundancyManager(RedundancyPolicy policy,
                                     uint32_t block_size, BlockBitmap* bitmap,
                                     RedundancyStats* stats)
    : policy_(policy),
      block_size_(block_size),
      bitmap_(bitmap),
      stats_(stats) {}

uint64_t RedundancyManager::FileBlocks(const Inode& inode) const {
  return (inode.size + block_size_ - 1) / block_size_;
}

uint64_t RedundancyManager::StripesNeeded(uint64_t file_blocks) const {
  return (file_blocks + policy_.k - 1) / policy_.k;
}

void RedundancyManager::EnsureStripes(uint64_t count) {
  if (stripes_.size() >= count) return;
  const size_t old = stripes_.size();
  stripes_.resize(count);
  for (size_t s = old; s < count; ++s) {
    stripes_[s].parity.assign(policy_.parity(), 0);
    stripes_[s].sums.assign(policy_.n, 0);
  }
}

bool RedundancyManager::BlockLost(uint64_t device_block) const {
  // A cleared bitmap bit means the block is no longer marked ours — it
  // was reclaimed (e.g. a crash-leaked free) and any plain allocation may
  // take it at any moment. That is loss evidence even while the content
  // still checks out.
  return bitmap_ != nullptr && !bitmap_->IsAllocated(device_block);
}

Status RedundancyManager::Load(uint32_t first_block, BlockStore* store) {
  stripes_.clear();
  chain_.clear();
  dirty_ = false;
  if (first_block == 0) return Status::OK();

  // Any inconsistency below degrades to "no coverage": the systematic
  // layout means the data shares ARE the file blocks, so losing the map
  // loses parity protection, never data. The orphaned chain blocks are
  // abandoned (we cannot trust pointers out of a corrupt chain enough to
  // free them), and dirty_ makes the next Sync persist a fresh chain.
  auto degrade = [this]() {
    stripes_.clear();
    chain_.clear();
    dirty_ = true;
    return Status::OK();
  };

  const size_t payload_per = block_size_ - kChainHeaderBytes;
  const size_t entry_bytes = 4u * (1 + policy_.parity() + policy_.n);
  std::vector<uint8_t> block(block_size_);
  std::vector<uint8_t> flat;
  uint64_t cur = first_block;
  uint64_t chunks_expected = 1;  // revised after the first chunk
  for (uint64_t i = 0; i < chunks_expected; ++i) {
    if (cur == 0 ||
        (bitmap_ != nullptr && cur >= bitmap_->total_count())) {
      return degrade();
    }
    STEGFS_RETURN_IF_ERROR(store->ReadBlock(cur, block.data()));
    if (DecodeFixed32(block.data() + 4) !=
        BlockSum32(block.data() + kChainHeaderBytes, payload_per)) {
      return degrade();
    }
    chain_.push_back(static_cast<uint32_t>(cur));
    flat.insert(flat.end(), block.begin() + kChainHeaderBytes, block.end());
    if (i == 0) {
      uint32_t total = DecodeFixed32(flat.data());
      if (total > kMaxStripeCount) return degrade();
      size_t total_bytes = 4 + static_cast<size_t>(total) * entry_bytes;
      chunks_expected = (total_bytes + payload_per - 1) / payload_per;
      if (chunks_expected == 0) chunks_expected = 1;
    }
    cur = DecodeFixed32(block.data());
  }

  const uint32_t total = DecodeFixed32(flat.data());
  const uint8_t* p = flat.data() + 4;
  EnsureStripes(total);
  for (uint32_t s = 0; s < total; ++s) {
    Stripe& st = stripes_[s];
    st.present = DecodeFixed32(p);
    p += 4;
    for (uint32_t i = 0; i < policy_.parity(); ++i) {
      st.parity[i] = DecodeFixed32(p);
      p += 4;
    }
    for (uint32_t i = 0; i < policy_.n; ++i) {
      st.sums[i] = DecodeFixed32(p);
      p += 4;
    }
  }
  return Status::OK();
}

StatusOr<uint32_t> RedundancyManager::Persist(BlockStore* store,
                                              BlockAllocator* alloc) {
  std::vector<uint32_t> old_chain = std::move(chain_);
  chain_.clear();

  uint32_t head = 0;
  if (!stripes_.empty()) {
    const size_t payload_per = block_size_ - kChainHeaderBytes;
    std::vector<uint8_t> flat(4);
    EncodeFixed32(flat.data(), static_cast<uint32_t>(stripes_.size()));
    for (const Stripe& st : stripes_) {
      uint8_t tmp[4];
      EncodeFixed32(tmp, st.present);
      flat.insert(flat.end(), tmp, tmp + 4);
      for (uint32_t b : st.parity) {
        EncodeFixed32(tmp, b);
        flat.insert(flat.end(), tmp, tmp + 4);
      }
      for (uint32_t sum : st.sums) {
        EncodeFixed32(tmp, sum);
        flat.insert(flat.end(), tmp, tmp + 4);
      }
    }
    const size_t chunks = (flat.size() + payload_per - 1) / payload_per;
    flat.resize(chunks * payload_per, 0);

    // Fresh blocks every time: the chain the committed header references
    // is never rewritten in place, so a crash can only ever leave the OLD
    // header with its intact OLD chain (the no-overwrite rule data blocks
    // already follow on durable mounts).
    std::vector<uint32_t> blocks(chunks);
    for (size_t i = 0; i < chunks; ++i) {
      STEGFS_ASSIGN_OR_RETURN(uint64_t b, alloc->AllocateBlock());
      blocks[i] = static_cast<uint32_t>(b);
    }
    std::vector<uint8_t> block(block_size_);
    for (size_t i = 0; i < chunks; ++i) {
      EncodeFixed32(block.data(), i + 1 < chunks ? blocks[i + 1] : 0);
      std::memcpy(block.data() + kChainHeaderBytes,
                  flat.data() + i * payload_per, payload_per);
      EncodeFixed32(block.data() + 4,
                    BlockSum32(block.data() + kChainHeaderBytes, payload_per));
      STEGFS_RETURN_IF_ERROR(store->WriteBlock(blocks[i], block.data()));
    }
    chain_ = std::move(blocks);
    head = chain_.front();
  }

  for (uint32_t b : old_chain) {
    STEGFS_RETURN_IF_ERROR(alloc->FreeBlock(b));
  }
  dirty_ = false;
  return head;
}

Status RedundancyManager::GatherStripe(const RedundancyIoCtx& ctx, uint64_t s,
                                       std::vector<GatheredShare>* out) {
  const uint32_t k = policy_.k;
  const uint32_t n = policy_.n;
  const uint64_t file_blocks = FileBlocks(*ctx.inode);
  const Stripe& st = stripes_[s];
  out->clear();
  out->resize(n);
  for (uint32_t j = 0; j < k; ++j) {
    GatheredShare& g = (*out)[j];
    g.index = static_cast<uint8_t>(j);
    const uint64_t idx = s * k + j;
    bool hole = idx >= file_blocks;
    uint64_t b = 0;
    if (!hole) {
      auto mapped = ctx.mapper->Map(*ctx.inode, idx, ctx.store);
      if (mapped.ok()) {
        b = mapped.value();
      } else if (mapped.status().IsNotFound()) {
        hole = true;
      } else {
        return mapped.status();
      }
    }
    if (hole) {
      // A hole is real data (zeros), not a lost share.
      g.content.assign(block_size_, 0);
      g.valid = true;
      continue;
    }
    g.device_backed = true;
    g.device_block = b;
    g.content.resize(block_size_);
    if (Status rs = ctx.store->ReadBlock(b, g.content.data()); !rs.ok()) {
      // A share the device cannot read (after the retry layer gave up) is
      // a lost share, not a failed gather: decode-and-heal from the k
      // survivors is exactly what this machinery is for.
      g.valid = false;
      if (stats_ != nullptr) stats_->verify_failures.Increment();
      continue;
    }
    if (BlockLost(b)) {
      g.valid = false;
    } else if ((st.present >> j) & 1) {
      g.valid = BlockSum32(g.content.data(), block_size_) == st.sums[j];
    } else {
      g.valid = true;  // no checksum recorded (coverage gap): trust it
    }
  }
  for (uint32_t i = 0; i < policy_.parity(); ++i) {
    GatheredShare& g = (*out)[k + i];
    g.index = static_cast<uint8_t>(k + i);
    const uint32_t pb = st.parity[i];
    if (pb == 0) {
      g.valid = false;  // parity never materialized — unusable, healable
      continue;
    }
    g.device_backed = true;
    g.device_block = pb;
    g.content.resize(block_size_);
    if (Status rs = ctx.store->ReadBlock(pb, g.content.data()); !rs.ok()) {
      g.valid = false;
      if (stats_ != nullptr) stats_->verify_failures.Increment();
      continue;
    }
    g.valid = !BlockLost(pb) &&
              BlockSum32(g.content.data(), block_size_) == st.sums[k + i];
  }
  return Status::OK();
}

Status RedundancyManager::EncodeStripe(const RedundancyIoCtx& ctx, uint64_t s,
                                       uint64_t touched_first,
                                       uint64_t touched_last) {
  const uint32_t k = policy_.k;
  const uint32_t n = policy_.n;
  const uint32_t p = policy_.parity();
  const uint64_t file_blocks = FileBlocks(*ctx.inode);
  EnsureStripes(s + 1);
  Stripe& st = stripes_[s];

  std::vector<std::vector<uint8_t>> data(k);
  std::vector<const uint8_t*> data_ptrs(k);
  std::vector<uint8_t> is_hole(k, 0);
  uint32_t present = 0;
  uint32_t stale = 0;  // untouched shares the old record disowns
  for (uint32_t j = 0; j < k; ++j) {
    const uint64_t idx = s * k + j;
    bool hole = idx >= file_blocks;
    uint64_t b = 0;
    if (!hole) {
      auto mapped = ctx.mapper->Map(*ctx.inode, idx, ctx.store);
      if (mapped.ok()) {
        b = mapped.value();
      } else if (mapped.status().IsNotFound()) {
        hole = true;
      } else {
        return mapped.status();
      }
    }
    data[j].resize(block_size_);
    if (hole) {
      std::memset(data[j].data(), 0, block_size_);
      is_hole[j] = 1;
    } else {
      Status rs = ctx.store->ReadBlock(b, data[j].data());
      const bool untouched = idx < touched_first || idx > touched_last;
      if (!rs.ok()) {
        // An unreadable sibling on a boundary write: treat like a stale
        // one (recovered from the old codeword below) instead of failing
        // the whole write.
        if (!untouched) return rs;
        stale |= 1u << j;
      } else if (untouched && ((st.present >> j) & 1) &&
                 (BlockLost(b) ||
                  BlockSum32(data[j].data(), block_size_) != st.sums[j])) {
        // The write hole: this share was NOT part of the write, and the
        // old record says its content is gone (reclaimed or corrupted).
        // Re-encoding parity over it would bless the corruption.
        stale |= 1u << j;
      }
      present |= 1u << j;
    }
    data_ptrs[j] = data[j].data();
  }

  if (stale != 0) {
    if (stats_ != nullptr) {
      for (uint32_t j = 0; j < k; ++j) {
        if ((stale >> j) & 1) stats_->verify_failures.Increment();
      }
    }
    // Recover the stale shares from the OLD codeword: every untouched
    // share that still checks out, holes (zeros then and now — a middle
    // hole only stops being one when written, which makes it touched),
    // and parity validated against the OLD sums. Touched shares hold NEW
    // content and can say nothing about the old codeword.
    std::vector<std::pair<uint8_t, std::vector<uint8_t>>> intact;
    for (uint32_t j = 0; j < k && intact.size() < k; ++j) {
      const uint64_t idx = s * k + j;
      if (idx >= touched_first && idx <= touched_last) continue;
      if ((stale >> j) & 1) continue;
      intact.emplace_back(static_cast<uint8_t>(j), data[j]);
    }
    std::vector<uint8_t> pbuf(block_size_);
    for (uint32_t i = 0; i < p && intact.size() < k; ++i) {
      const uint32_t pb = st.parity[i];
      if (pb == 0 || BlockLost(pb)) continue;
      if (!ctx.store->ReadBlock(pb, pbuf.data()).ok()) continue;
      if (BlockSum32(pbuf.data(), block_size_) != st.sums[k + i]) continue;
      intact.emplace_back(static_cast<uint8_t>(k + i), pbuf);
    }
    if (intact.size() < k) {
      // Not enough of the old codeword survives. Keep the OLD record —
      // the next read of the stale share must still flunk verification —
      // and surface the loss instead of silently certifying it.
      return Status::DataLoss(
          "stale sibling share on partial-stripe write and too few old "
          "shares survive to recover it");
    }
    obs::LatencyTimer decode_timer(
        stats_ != nullptr ? &stats_->decode_ns : nullptr);
    STEGFS_ASSIGN_OR_RETURN(std::vector<std::vector<uint8_t>> decoded,
                            crypto::IdaDecodeStripe(intact, k));
    decode_timer.Stop();
    for (uint32_t j = 0; j < k; ++j) {
      if (!((stale >> j) & 1)) continue;
      const uint64_t idx = s * k + j;
      data[j] = std::move(decoded[j]);
      data_ptrs[j] = data[j].data();
      // Same re-disperse rule as HealStripe: fresh block, old one
      // abandoned (a plain file may own it now).
      STEGFS_ASSIGN_OR_RETURN(uint64_t nb, ctx.alloc->AllocateBlock());
      STEGFS_RETURN_IF_ERROR(ctx.store->WriteBlock(nb, data[j].data()));
      STEGFS_RETURN_IF_ERROR(
          ctx.mapper->Remap(ctx.inode, idx, nb, ctx.store, ctx.inode_dirty));
      if (stats_ != nullptr) stats_->shares_healed.Increment();
    }
  }

  std::vector<uint8_t> parity(static_cast<size_t>(p) * block_size_);
  std::vector<uint8_t*> parity_ptrs(p);
  for (uint32_t i = 0; i < p; ++i) {
    parity_ptrs[i] = parity.data() + static_cast<size_t>(i) * block_size_;
  }
  crypto::IdaEncodeParity(data_ptrs.data(), k, n, block_size_,
                          parity_ptrs.data());

  std::vector<uint64_t> parity_blocks(p);
  for (uint32_t i = 0; i < p; ++i) {
    if (st.parity[i] == 0) {
      STEGFS_ASSIGN_OR_RETURN(uint64_t b, ctx.alloc->AllocateBlock());
      st.parity[i] = static_cast<uint32_t>(b);
    }
    parity_blocks[i] = st.parity[i];
  }
  if (p > 0) {
    STEGFS_RETURN_IF_ERROR(
        ctx.store->WriteBlocks(parity_blocks.data(), p, parity.data()));
  }

  st.present = present;
  for (uint32_t j = 0; j < k; ++j) {
    st.sums[j] = (present >> j) & 1
                     ? BlockSum32(data[j].data(), block_size_)
                     : 0;
  }
  for (uint32_t i = 0; i < p; ++i) {
    st.sums[k + i] = BlockSum32(parity_ptrs[i], block_size_);
  }
  dirty_ = true;
  if (stats_ != nullptr) {
    stats_->stripes_encoded.Increment();
    stats_->shares_written.Add(p);
  }
  return Status::OK();
}

Status RedundancyManager::HealStripe(const RedundancyIoCtx& ctx, uint64_t s,
                                     uint64_t* healed) {
  const uint32_t k = policy_.k;
  const uint32_t n = policy_.n;
  Stripe& st = stripes_[s];

  obs::Span heal_span("red.heal_stripe", "redundancy");
  obs::LatencyTimer heal_timer(
      stats_ != nullptr ? &stats_->heal_ns : nullptr);
  std::vector<GatheredShare> shares;
  STEGFS_RETURN_IF_ERROR(GatherStripe(ctx, s, &shares));
  std::vector<std::pair<uint8_t, std::vector<uint8_t>>> intact;
  for (const GatheredShare& g : shares) {
    if (g.valid) intact.emplace_back(g.index, g.content);
    if (intact.size() == k) break;
  }
  if (intact.size() < k) {
    return Status::DataLoss("stripe lost more shares than the policy tolerates");
  }

  obs::LatencyTimer decode_timer(
      stats_ != nullptr ? &stats_->decode_ns : nullptr);
  STEGFS_ASSIGN_OR_RETURN(std::vector<std::vector<uint8_t>> decoded,
                          crypto::IdaDecodeStripe(intact, k));
  decode_timer.Stop();
  std::vector<const uint8_t*> data_ptrs(k);
  for (uint32_t j = 0; j < k; ++j) data_ptrs[j] = decoded[j].data();
  const uint32_t p = policy_.parity();
  std::vector<uint8_t> parity(static_cast<size_t>(p) * block_size_);
  std::vector<uint8_t*> parity_ptrs(p);
  for (uint32_t i = 0; i < p; ++i) {
    parity_ptrs[i] = parity.data() + static_cast<size_t>(i) * block_size_;
  }
  crypto::IdaEncodeParity(data_ptrs.data(), k, n, block_size_,
                          parity_ptrs.data());

  // Re-disperse every lost share onto a FRESH block. The lost block is
  // never freed: a plain allocation may own it now, and stolen vs
  // corrupted-in-place cannot be told apart — abandoning it is the only
  // deniability-preserving choice.
  uint64_t fixed = 0;
  for (uint32_t j = 0; j < k; ++j) {
    if (shares[j].valid) continue;
    const uint64_t idx = s * k + j;
    STEGFS_ASSIGN_OR_RETURN(uint64_t nb, ctx.alloc->AllocateBlock());
    STEGFS_RETURN_IF_ERROR(ctx.store->WriteBlock(nb, decoded[j].data()));
    STEGFS_RETURN_IF_ERROR(
        ctx.mapper->Remap(ctx.inode, idx, nb, ctx.store, ctx.inode_dirty));
    st.sums[j] = BlockSum32(decoded[j].data(), block_size_);
    st.present |= 1u << j;
    ++fixed;
  }
  for (uint32_t i = 0; i < p; ++i) {
    if (shares[k + i].valid) continue;
    STEGFS_ASSIGN_OR_RETURN(uint64_t nb, ctx.alloc->AllocateBlock());
    STEGFS_RETURN_IF_ERROR(ctx.store->WriteBlock(nb, parity_ptrs[i]));
    st.parity[i] = static_cast<uint32_t>(nb);
    st.sums[k + i] = BlockSum32(parity_ptrs[i], block_size_);
    ++fixed;
  }
  dirty_ = true;
  if (healed != nullptr) *healed += fixed;
  if (stats_ != nullptr) {
    stats_->shares_healed.Add(fixed);
  }
  return Status::OK();
}

Status RedundancyManager::OnExtentRead(const RedundancyIoCtx& ctx,
                                       ReadBlockRef* refs, size_t count) {
  const uint32_t k = policy_.k;
  std::vector<uint64_t> degraded;
  for (size_t r = 0; r < count; ++r) {
    const uint64_t s = refs[r].file_idx / k;
    const uint32_t j = static_cast<uint32_t>(refs[r].file_idx % k);
    if (s >= stripes_.size()) continue;  // uncovered (scrub will rebuild)
    const Stripe& st = stripes_[s];
    bool bad;
    if (BlockLost(refs[r].device_block)) {
      bad = true;
    } else if ((st.present >> j) & 1) {
      bad = BlockSum32(refs[r].data, block_size_) != st.sums[j];
    } else {
      bad = false;
    }
    if (bad) {
      if (stats_ != nullptr) {
        stats_->verify_failures.Increment();
      }
      if (std::find(degraded.begin(), degraded.end(), s) == degraded.end()) {
        degraded.push_back(s);
      }
    }
  }
  for (uint64_t s : degraded) {
    if (stats_ != nullptr) {
      stats_->degraded_reads.Increment();
    }
    STEGFS_RETURN_IF_ERROR(HealStripe(ctx, s, nullptr));
    // Patch the already-read buffers with the repaired content so this
    // read returns healed bytes without re-issuing the batch.
    std::vector<GatheredShare> shares;
    STEGFS_RETURN_IF_ERROR(GatherStripe(ctx, s, &shares));
    for (size_t r = 0; r < count; ++r) {
      if (refs[r].file_idx / k != s) continue;
      const uint32_t j = static_cast<uint32_t>(refs[r].file_idx % k);
      std::memcpy(refs[r].data, shares[j].content.data(), block_size_);
    }
  }
  return Status::OK();
}

Status RedundancyManager::OnExtentWrite(const RedundancyIoCtx& ctx,
                                        uint64_t first_idx,
                                        uint64_t last_idx) {
  const uint64_t first_s = first_idx / policy_.k;
  const uint64_t last_s = last_idx / policy_.k;
  for (uint64_t s = first_s; s <= last_s; ++s) {
    // Boundary stripes re-encode with sibling verification: only
    // [first_idx, last_idx] was actually written, anything else folded
    // into the new parity is verified against the old record first.
    STEGFS_RETURN_IF_ERROR(EncodeStripe(ctx, s, first_idx, last_idx));
  }
  return Status::OK();
}

Status RedundancyManager::OnTruncate(const RedundancyIoCtx& ctx,
                                     uint64_t new_file_blocks) {
  const uint64_t needed = StripesNeeded(new_file_blocks);
  if (stripes_.size() > needed) {
    for (uint64_t s = needed; s < stripes_.size(); ++s) {
      for (uint32_t pb : stripes_[s].parity) {
        // Parity blocks are exclusively ours and unreferenced by the
        // inode, so (unlike lost shares) freeing them is safe.
        if (pb != 0) STEGFS_RETURN_IF_ERROR(ctx.alloc->FreeBlock(pb));
      }
    }
    stripes_.resize(needed);
    dirty_ = true;
  }
  // Members of the boundary stripe became holes: its parity is stale.
  // The shares below the new end were NOT touched by the truncate, so
  // they get the same sibling verification as a partial-stripe write.
  if (needed > 0 && needed <= stripes_.size() &&
      new_file_blocks % policy_.k != 0) {
    STEGFS_RETURN_IF_ERROR(
        EncodeStripe(ctx, needed - 1, new_file_blocks, ~0ULL));
  }
  return Status::OK();
}

Status RedundancyManager::Scrub(const RedundancyIoCtx& ctx,
                                RedundancyScrubReport* report) {
  const uint64_t needed = StripesNeeded(FileBlocks(*ctx.inode));
  // Stale tail (shouldn't survive OnTruncate, but heal it anyway).
  if (stripes_.size() > needed) {
    STEGFS_RETURN_IF_ERROR(OnTruncate(ctx, FileBlocks(*ctx.inode)));
  }
  EnsureStripes(needed);
  for (uint64_t s = 0; s < needed; ++s) {
    report->stripes_checked++;
    Stripe& st = stripes_[s];
    const bool uncovered =
        st.present == 0 &&
        std::all_of(st.parity.begin(), st.parity.end(),
                    [](uint32_t b) { return b == 0; });
    if (uncovered) {
      // Coverage lost (e.g. torn map chain) — rebuild parity from the
      // data shares, which the systematic layout kept intact.
      report->degraded_stripes++;
      STEGFS_RETURN_IF_ERROR(EncodeStripe(ctx, s));
      report->healed_shares += policy_.parity();
      continue;
    }
    std::vector<GatheredShare> shares;
    STEGFS_RETURN_IF_ERROR(GatherStripe(ctx, s, &shares));
    const bool degraded =
        std::any_of(shares.begin(), shares.end(),
                    [](const GatheredShare& g) { return !g.valid; });
    if (!degraded) continue;
    report->degraded_stripes++;
    Status healed = HealStripe(ctx, s, &report->healed_shares);
    if (healed.IsDataLoss()) {
      report->unrecoverable_stripes++;
      continue;  // audit the rest of the object regardless
    }
    STEGFS_RETURN_IF_ERROR(healed);
  }
  return Status::OK();
}

Status RedundancyManager::ReleaseAll(BlockAllocator* alloc) {
  for (const Stripe& st : stripes_) {
    for (uint32_t pb : st.parity) {
      if (pb != 0) STEGFS_RETURN_IF_ERROR(alloc->FreeBlock(pb));
    }
  }
  for (uint32_t b : chain_) {
    STEGFS_RETURN_IF_ERROR(alloc->FreeBlock(b));
  }
  stripes_.clear();
  chain_.clear();
  dirty_ = false;
  return Status::OK();
}

Status RedundancyManager::ShareBlocksForTesting(const RedundancyIoCtx& ctx,
                                                uint64_t s,
                                                std::vector<uint64_t>* out) {
  const uint32_t k = policy_.k;
  const uint64_t file_blocks = FileBlocks(*ctx.inode);
  out->assign(policy_.n, 0);
  for (uint32_t j = 0; j < k; ++j) {
    const uint64_t idx = s * k + j;
    if (idx >= file_blocks) continue;
    auto mapped = ctx.mapper->Map(*ctx.inode, idx, ctx.store);
    if (mapped.ok()) {
      (*out)[j] = mapped.value();
    } else if (!mapped.status().IsNotFound()) {
      return mapped.status();
    }
  }
  if (s < stripes_.size()) {
    for (uint32_t i = 0; i < policy_.parity(); ++i) {
      (*out)[k + i] = stripes_[s].parity[i];
    }
  }
  return Status::OK();
}

}  // namespace stegfs
