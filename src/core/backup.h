// Backup and recovery (paper section 3.3, APIs 8 and 9).
//
// Hidden files cannot be backed up by copying (the administrator cannot see
// them), and imaging the whole device is too expensive. StegFS instead
// images ONLY the blocks that are allocated in the bitmap but belong to no
// plain file — i.e. hidden objects, their free pools, dummy files, and the
// abandoned blocks. Plain files are saved logically (path + content).
//
// Recovery restores the imaged blocks to their ORIGINAL addresses (hidden
// inode tables cannot be relocated — nobody can rewrite pointers they
// cannot see), re-fills every remaining data block with fresh noise, and
// recreates plain files through normal allocation, possibly at new
// addresses.
#ifndef STEGFS_CORE_BACKUP_H_
#define STEGFS_CORE_BACKUP_H_

#include <string>

#include "blockdev/block_device.h"
#include "core/stegfs.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

struct BackupStats {
  uint64_t imaged_blocks = 0;   // hidden + abandoned + dummy blocks
  uint64_t plain_files = 0;
  uint64_t plain_dirs = 0;
  uint64_t image_bytes = 0;     // total serialized size
};

// API 8: steg_backup. Serializes the volume snapshot; `stats` optional.
StatusOr<std::string> StegBackup(StegFs* fs, BackupStats* stats = nullptr);

// API 9: steg_recovery. Rebuilds a volume from `image` onto `device`
// (typically a fresh device of the same geometry). After this returns, the
// device mounts as a StegFs volume with all hidden data intact.
Status StegRecover(BlockDevice* device, const std::string& image);

}  // namespace stegfs

#endif  // STEGFS_CORE_BACKUP_H_
