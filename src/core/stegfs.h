// StegFs: the steganographic file system (the paper's contribution).
//
// A StegFs volume is a PlainFs volume (superblock, bitmap, central
// directory, plain files) PLUS:
//   - format-time random fill of every block,
//   - abandoned blocks: ~1% of the volume marked allocated but owned by
//     nothing (foils "allocated-but-unlisted => hidden" inference),
//   - dummy hidden files churned by MaintenanceTick() (foils bitmap
//     snapshot differencing),
//   - hidden objects (HiddenObject) located by keyed PRNG probing and
//     encrypted under per-object FAKs,
//   - per-UAK directories of (name, FAK) pairs, themselves hidden files,
//   - the steganographic API of section 4: steg_create/hide/unhide/
//     connect/disconnect/getentry/addentry (backup/recovery live in
//     core/backup.h).
//
// Naming note: the paper's C-style APIs (steg_create, ...) map to
// StegCreate, StegHide, ... methods here; "physical file name" is
// uid + '\0' + object name, exactly the paper's uid||path construction.
//
// Thread-safety: a mounted StegFs is safe for concurrent use by many
// sessions. Distinct uids' namespace operations and distinct connected
// objects' I/O run in parallel; one uid's namespace ops serialize on its
// session lock, one object's I/O on its object lock, and bitmap/free-pool/
// placement-rng mutations on the narrow allocation lock. The full lock
// hierarchy is documented in docs/ARCHITECTURE.md ("Concurrency model").
// Format, Mount, backup and escrow remain whole-volume maintenance flows
// that require quiescence.
#ifndef STEGFS_CORE_STEGFS_H_
#define STEGFS_CORE_STEGFS_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blockdev/block_device.h"
#include "concurrency/session_manager.h"
#include "core/hidden_directory.h"
#include "core/hidden_object.h"
#include "crypto/prng.h"
#include "crypto/rsa.h"
#include "fs/plain_fs.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

// How Format fills the volume with noise.
enum class FillMode {
  kFast,    // xoshiro256** noise — statistically random, fast (benchmarks)
  kCrypto,  // AES-CTR DRBG noise — cryptographically indistinguishable
};

struct StegFormatOptions {
  StegParams params;        // Table 1 knobs
  uint32_t num_inodes = 0;  // 0 = auto
  FillMode fill_mode = FillMode::kFast;
  // Entropy for fill, abandoned-block placement and the dummy seed. Two
  // formats with the same entropy produce identical volumes (tests rely on
  // this; production would pass real entropy).
  std::string entropy = "stegfs-format-entropy";
  // Write-ahead journal ring size (0 = no journal region, the historical
  // format). Required for Durability::kJournal mounts.
  uint32_t journal_blocks = 0;
};

struct StegFsOptions {
  MountOptions mount;            // plain-side: cache size, plain policy
  uint32_t probe_limit = 10000;  // locator probe bound
  uint64_t steg_rng_seed = 0x5745474653ULL;  // hidden placement randomness
};

struct SpaceReport {
  uint64_t block_size = 0;
  uint64_t total_blocks = 0;
  uint64_t metadata_blocks = 0;
  uint64_t allocated_blocks = 0;  // includes metadata
  uint64_t free_blocks = 0;
  uint64_t plain_file_bytes = 0;
};

class StegFs {
 public:
  // Formats `device` as a StegFs volume: random-fills all blocks, lays down
  // the plain file system, abandons random blocks, creates dummy hidden
  // files sized around params.dummy_file_avg_bytes.
  static Status Format(BlockDevice* device, const StegFormatOptions& options);

  static StatusOr<std::unique_ptr<StegFs>> Mount(BlockDevice* device,
                                                 const StegFsOptions& options);

  ~StegFs();
  StegFs(const StegFs&) = delete;
  StegFs& operator=(const StegFs&) = delete;

  // The plain file system view (the standard open/read/write APIs of the
  // paper's figure 5 — "StegFS implements all the standard file system
  // APIs, so it is able to support existing applications").
  PlainFs* plain() { return plain_.get(); }

  // --- API 1: steg_create(objname, UAK, objtype) -----------------------
  // Creates a hidden object with a fresh random FAK and records
  // (objname, FAK) in the UAK's directory (created on first use).
  // `redundancy` fixes the object's extent-protection policy for life:
  // kNone (the paper's behavior), or replicate/IDA shares that let the
  // data path heal blocks lost to plain-side allocation.
  Status StegCreate(const std::string& uid, const std::string& objname,
                    const std::string& uak, HiddenType type,
                    RedundancyPolicy redundancy = RedundancyPolicy());

  // --- API 2: steg_hide(pathname, objname, UAK) -------------------------
  // Converts a plain file/directory into a hidden object (recursively for
  // directories) and deletes the plain source.
  Status StegHide(const std::string& uid, const std::string& pathname,
                  const std::string& objname, const std::string& uak);

  // --- API 3: steg_unhide(pathname, objname, UAK) -----------------------
  // Converts a hidden object back into a plain file/directory at
  // `pathname` and deletes the hidden source.
  Status StegUnhide(const std::string& uid, const std::string& pathname,
                    const std::string& objname, const std::string& uak);

  // --- API 4: steg_connect(objname, UAK) --------------------------------
  // Resolves objname through the UAK directory and makes it visible to the
  // (uid) session. Connecting a hidden directory reveals its offspring too.
  Status StegConnect(const std::string& uid, const std::string& objname,
                     const std::string& uak);

  // --- API 5: steg_disconnect(objname) ----------------------------------
  Status StegDisconnect(const std::string& uid, const std::string& objname);
  // "When the user logs off, all the connected hidden objects are
  // automatically disconnected."
  Status DisconnectAll(const std::string& uid);

  // --- I/O on connected hidden objects ----------------------------------
  StatusOr<std::string> HiddenReadAll(const std::string& uid,
                                      const std::string& objname);
  Status HiddenRead(const std::string& uid, const std::string& objname,
                    uint64_t offset, uint64_t n, std::string* out);
  Status HiddenWriteAll(const std::string& uid, const std::string& objname,
                        const std::string& data);
  Status HiddenWrite(const std::string& uid, const std::string& objname,
                     uint64_t offset, const std::string& data);
  Status HiddenTruncate(const std::string& uid, const std::string& objname,
                        uint64_t new_size);
  StatusOr<uint64_t> HiddenSize(const std::string& uid,
                                const std::string& objname);
  // Names currently visible to the session.
  std::vector<std::string> ConnectedObjects(const std::string& uid) const;

  // Deletes a hidden object and drops it from the UAK directory.
  Status HiddenRemove(const std::string& uid, const std::string& objname,
                      const std::string& uak);

  // --- API 6: steg_getentry(objname, entryfile, publickey) --------------
  // Writes the RSA-encrypted (objname, type, FAK) record to the plain file
  // `entryfile_path`, for transmission to the recipient.
  Status StegGetEntry(const std::string& uid, const std::string& objname,
                      const std::string& uak,
                      const std::string& entryfile_path,
                      const crypto::RsaPublicKey& recipient_key,
                      const std::string& entropy);

  // --- API 7: steg_addentry(objname, entryfile, privatekey) -------------
  // Decrypts `entryfile_path` and adds the particulars to the caller's UAK
  // directory, then destroys the entry file ("the ciphertext is
  // destroyed").
  Status StegAddEntry(const std::string& uid,
                      const std::string& entryfile_path,
                      const crypto::RsaPrivateKey& private_key,
                      const std::string& uak);

  // Revocation (paper 3.2): copies the object under a fresh FAK (and
  // optionally a new name), removes the original, updates the owner's UAK
  // directory. Old shared FAKs become useless.
  Status RevokeSharing(const std::string& uid, const std::string& objname,
                       const std::string& uak,
                       const std::string& new_objname);

  // One round of dummy-hidden-file churn ("StegFS additionally maintains
  // one or more dummy hidden files that it updates periodically").
  Status MaintenanceTick();

  // Persists all state (connected object headers, bitmap, inodes, cache).
  Status Flush();

  // Online recovery/scrub: cross-checks bitmap vs plain reachability,
  // verifies the journal ring is at rest (see PlainFs::Fsck), and audits
  // every CONNECTED redundant hidden object — fsck holds exactly the keys
  // the running sessions hold, so it can verify and re-disperse their
  // shares while everything unconnected stays indistinguishable noise.
  Status Fsck(journal::FsckReport* out);

  // Volume-wide redundancy counters (surfaced through steg_stats).
  const RedundancyStats& redundancy_stats() const { return red_stats_; }

  // Test-only: the connected object's HiddenObject, bypassing the session
  // locks (callers serialize externally).
  StatusOr<HiddenObject*> ConnectedForTesting(const std::string& uid,
                                              const std::string& objname);

  SpaceReport ReportSpace();
  const StegParams& params() const { return plain_->superblock().steg; }
  const StegFsOptions& options() const { return options_; }

  // Volume context for direct HiddenObject use (tests, benchmarks).
  HiddenVolume VolumeCtx();

  // uid || '\0' || objname — the paper's "user id concatenated with the
  // complete path name" collision-avoidance scheme.
  static std::string PhysicalName(const std::string& uid,
                                  const std::string& objname);

 private:
  StegFs(BlockDevice* device, std::unique_ptr<PlainFs> plain,
         const StegFsOptions& options);

  static Status CreateDummyFiles(PlainFs* plain, Xoshiro* rng,
                                 const StegFsOptions& opts);

  // UAK directory bootstrap name (per uid, keyed by the UAK itself).
  static std::string UakDirName();
  StatusOr<std::unique_ptr<HiddenObject>> OpenUakDir(const std::string& uid,
                                                     const std::string& uak,
                                                     bool create_if_missing);
  // Resolves objname -> FAK via the UAK directory and opens the object.
  StatusOr<std::unique_ptr<HiddenObject>> OpenByEntry(
      const std::string& uid, const HiddenDirEntry& entry);

  // An entry plus where it lives: directly in the UAK directory, or inside
  // a (possibly nested) hidden directory reachable from it.
  struct ResolvedEntry {
    HiddenDirEntry entry;
    bool in_uak_dir = true;
    HiddenDirEntry parent;  // valid when !in_uak_dir
  };
  // Finds `objname` in the UAK directory or by descending hidden
  // directories along the name's '/'-prefix path.
  StatusOr<ResolvedEntry> ResolveEntry(const std::string& uid,
                                       const std::string& objname,
                                       const std::string& uak);
  // Rewrites the container of `resolved`: erases the old entry and, unless
  // `replacement` is null, upserts *replacement.
  Status RewriteContainer(const std::string& uid, const std::string& uak,
                          const ResolvedEntry& resolved,
                          const HiddenDirEntry* replacement);

  std::string FreshFak();

  // Header persistence after one hidden mutation: immediate on legacy
  // mounts, deferred to the group-commit boundaries (Flush, disconnect,
  // unmount) on durable ones — see the definition for the rationale.
  Status SyncAfterMutation(HiddenObject* obj);

  // Looks the object up in the uid's session; FailedPrecondition when not
  // connected. The caller locks the returned object's mu for the operation.
  StatusOr<std::shared_ptr<concurrency::SessionObject>> AcquireConnected(
      const std::string& uid, const std::string& objname);

  // Recursive helpers for hide/unhide of directories. `session` may be
  // null (uid never connected anything).
  Status HidePlainTree(const std::string& uid, const std::string& plain_path,
                       const std::string& objname,
                       std::vector<HiddenDirEntry>* parent_entries);
  Status UnhideTree(const std::string& uid, const std::string& plain_path,
                    const HiddenDirEntry& entry,
                    concurrency::Session* session);
  Status RemoveTree(const std::string& uid, const HiddenDirEntry& entry,
                    concurrency::Session* session);

  BlockDevice* device_;
  std::unique_ptr<PlainFs> plain_;
  StegFsOptions options_;
  // Allocation lock (level 3 of the hierarchy): guards steg_rng_ and every
  // hidden-path bitmap/free-pool mutation. Handed to hidden objects via
  // HiddenVolume::alloc_mu.
  std::mutex alloc_mu_;
  Xoshiro steg_rng_;
  std::mutex fak_mu_;  // guards fak_drbg_
  crypto::CtrDrbg fak_drbg_;
  std::mutex maint_mu_;  // serializes MaintenanceTick rounds
  concurrency::SessionManager sessions_;
  RedundancyStats red_stats_;
  // Hidden-namespace op latencies (registered under stegfs_hidden_* in
  // the plain mount's registry, alongside red_stats_'s instruments).
  obs::Histogram hidden_read_ns_;
  obs::Histogram hidden_write_ns_;
  obs::Histogram hidden_truncate_ns_;
};

}  // namespace stegfs

#endif  // STEGFS_CORE_STEGFS_H_
