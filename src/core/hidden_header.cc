#include "core/hidden_header.h"

#include <cstring>

#include "crypto/sha256.h"
#include "util/coding.h"

namespace stegfs {

namespace {
// Fixed prefix: signature(32) + type(1) + pad(7) + size(8) + mtime(8) +
// inode pointers (12 * 4) + pool count (4).
constexpr size_t kFixedBytes = 32 + 1 + 7 + 8 + 8 + 48 + 4;
}  // namespace

Status HiddenHeader::EncodeTo(uint8_t* buf, size_t buf_size) const {
  if (buf_size < kFixedBytes + free_pool.size() * 4 + kHeaderTrailerBytes) {
    return Status::InvalidArgument("header block too small for free pool");
  }
  if (free_pool.size() > kMaxFreePool) {
    return Status::InvalidArgument("free pool exceeds header capacity");
  }
  std::memset(buf, 0, buf_size);
  uint8_t* p = buf;
  std::memcpy(p, signature.data(), 32);
  p += 32;
  *p = static_cast<uint8_t>(type);
  // The 7 former pad bytes now carry the redundancy policy:
  // [kind u8][k u8][n u8][red_map_block u32]. kNone writes zeros, keeping
  // the encoding byte-identical to pre-redundancy headers.
  if (redundancy.enabled()) {
    if (!redundancy.Valid()) {
      return Status::InvalidArgument("invalid redundancy policy");
    }
    p[1] = static_cast<uint8_t>(redundancy.kind);
    p[2] = redundancy.k;
    p[3] = redundancy.n;
    EncodeFixed32(p + 4, red_map_block);
  }
  p += 8;  // 1 byte type + 7 policy bytes
  EncodeFixed64(p, this->size);
  p += 8;
  EncodeFixed64(p, mtime);
  p += 8;
  for (uint32_t i = 0; i < kDirectPointers; ++i) {
    EncodeFixed32(p, inode.direct[i]);
    p += 4;
  }
  EncodeFixed32(p, inode.single_indirect);
  p += 4;
  EncodeFixed32(p, inode.double_indirect);
  p += 4;
  EncodeFixed32(p, static_cast<uint32_t>(free_pool.size()));
  p += 4;
  for (uint32_t b : free_pool) {
    EncodeFixed32(p, b);
    p += 4;
  }
  // Commit-protocol trailer at the block's end (see kHeaderTrailerBytes).
  uint8_t* trailer = buf + buf_size - kHeaderTrailerBytes;
  EncodeFixed64(trailer, seq);
  EncodeFixed32(trailer + 8, partner);
  crypto::Sha256Digest digest =
      crypto::Sha256::Hash(buf, buf_size - 16);
  std::memcpy(trailer + 12, digest.data(), 16);
  return Status::OK();
}

StatusOr<HiddenHeader> HiddenHeader::DecodeFrom(const uint8_t* buf,
                                                size_t size) {
  if (size < kFixedBytes) {
    return Status::Corruption("header block too small");
  }
  HiddenHeader h;
  const uint8_t* p = buf;
  std::memcpy(h.signature.data(), p, 32);
  p += 32;
  uint8_t type_byte = *p;
  if (type_byte != static_cast<uint8_t>(HiddenType::kFile) &&
      type_byte != static_cast<uint8_t>(HiddenType::kDirectory)) {
    return Status::Corruption("hidden header has invalid type");
  }
  h.type = static_cast<HiddenType>(type_byte);
  if (p[1] != 0) {
    h.redundancy.kind = static_cast<RedundancyKind>(p[1]);
    h.redundancy.k = p[2];
    h.redundancy.n = p[3];
    h.red_map_block = DecodeFixed32(p + 4);
    if (p[1] > static_cast<uint8_t>(RedundancyKind::kIda) ||
        !h.redundancy.Valid()) {
      return Status::Corruption("hidden header has invalid redundancy");
    }
  }
  p += 8;
  h.size = DecodeFixed64(p);
  p += 8;
  h.mtime = DecodeFixed64(p);
  p += 8;
  h.inode.type = h.type == HiddenType::kDirectory ? InodeType::kDirectory
                                                  : InodeType::kFile;
  h.inode.size = h.size;
  h.inode.mtime = h.mtime;
  for (uint32_t i = 0; i < kDirectPointers; ++i) {
    h.inode.direct[i] = DecodeFixed32(p);
    p += 4;
  }
  h.inode.single_indirect = DecodeFixed32(p);
  p += 4;
  h.inode.double_indirect = DecodeFixed32(p);
  p += 4;
  uint32_t pool_count = DecodeFixed32(p);
  p += 4;
  if (pool_count > kMaxFreePool ||
      kFixedBytes + pool_count * 4 + kHeaderTrailerBytes > size) {
    return Status::Corruption("hidden header pool count invalid");
  }
  h.free_pool.resize(pool_count);
  for (uint32_t i = 0; i < pool_count; ++i) {
    h.free_pool[i] = DecodeFixed32(p);
    p += 4;
  }
  const uint8_t* trailer = buf + size - kHeaderTrailerBytes;
  h.seq = DecodeFixed64(trailer);
  h.partner = DecodeFixed32(trailer + 8);
  // A header written by this code always carries a checksum; an all-zero
  // field is a legacy image (accepted as-is). Anything else must verify —
  // that rejection is what makes a torn header detectable instead of
  // silently yielding a garbage inode.
  bool has_checksum = false;
  for (int i = 0; i < 16; ++i) has_checksum |= trailer[12 + i] != 0;
  if (has_checksum) {
    crypto::Sha256Digest digest = crypto::Sha256::Hash(buf, size - 16);
    if (std::memcmp(digest.data(), trailer + 12, 16) != 0) {
      return Status::Corruption("hidden header checksum mismatch (torn?)");
    }
  }
  return h;
}

}  // namespace stegfs
