#include "core/escrow.h"

#include "util/coding.h"

namespace stegfs {

KeyEscrow::KeyEscrow(StegFs* fs, std::string escrow_path)
    : fs_(fs), escrow_path_(std::move(escrow_path)) {}

// Creates every missing ancestor directory of `path`.
Status KeyEscrow::EnsureParents(const std::string& path) {
  for (size_t pos = path.find('/', 1); pos != std::string::npos;
       pos = path.find('/', pos + 1)) {
    std::string dir = path.substr(0, pos);
    if (!fs_->plain()->Exists(dir)) {
      STEGFS_RETURN_IF_ERROR(fs_->plain()->MkDir(dir));
    }
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> KeyEscrow::LoadEnvelopes() {
  if (!fs_->plain()->Exists(escrow_path_)) {
    return std::vector<std::string>{};
  }
  STEGFS_ASSIGN_OR_RETURN(std::string blob,
                          fs_->plain()->ReadFile(escrow_path_));
  Decoder dec(blob);
  uint32_t count;
  if (!dec.GetFixed32(&count)) {
    return Status::Corruption("escrow file truncated");
  }
  std::vector<std::string> envelopes;
  envelopes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string envelope;
    if (!dec.GetLengthPrefixed(&envelope)) {
      return Status::Corruption("escrow record truncated");
    }
    envelopes.push_back(std::move(envelope));
  }
  return envelopes;
}

Status KeyEscrow::StoreEnvelopes(const std::vector<std::string>& envelopes) {
  std::string blob;
  PutFixed32(&blob, static_cast<uint32_t>(envelopes.size()));
  for (const std::string& e : envelopes) {
    PutLengthPrefixed(&blob, e);
  }
  return fs_->plain()->WriteFile(escrow_path_, blob);
}

Status KeyEscrow::Deposit(const std::string& uid, const std::string& objname,
                          const std::string& uak,
                          const crypto::RsaPublicKey& admin_key,
                          const std::string& entropy) {
  // Reuse the sharing machinery: steg_getentry produces exactly the
  // RSA-encrypted (name, type, FAK) record we need — with the uid prepended
  // inside the plaintext so the administrator knows whose object it is.
  STEGFS_RETURN_IF_ERROR(EnsureParents(escrow_path_));
  std::string tmp = escrow_path_ + ".deposit.tmp";
  STEGFS_RETURN_IF_ERROR(
      fs_->StegGetEntry(uid, objname, uak, tmp, admin_key, entropy));
  STEGFS_ASSIGN_OR_RETURN(std::string envelope, fs_->plain()->ReadFile(tmp));
  STEGFS_RETURN_IF_ERROR(fs_->plain()->Unlink(tmp));

  // Escrow entry = LP(uid) + LP(envelope); the uid stays in the clear
  // (the administrator must be able to group records by account).
  std::string record;
  PutLengthPrefixed(&record, uid);
  PutLengthPrefixed(&record, envelope);

  STEGFS_ASSIGN_OR_RETURN(std::vector<std::string> envelopes,
                          LoadEnvelopes());
  envelopes.push_back(std::move(record));
  return StoreEnvelopes(envelopes);
}

StatusOr<EscrowRecord> KeyEscrow::DecryptRecord(
    const crypto::RsaPrivateKey& admin_key, const std::string& raw) {
  Decoder dec(raw);
  EscrowRecord record;
  std::string envelope;
  if (!dec.GetLengthPrefixed(&record.uid) ||
      !dec.GetLengthPrefixed(&envelope)) {
    return Status::Corruption("malformed escrow record");
  }
  STEGFS_ASSIGN_OR_RETURN(std::string plaintext,
                          crypto::RsaDecrypt(admin_key, envelope));
  STEGFS_ASSIGN_OR_RETURN(std::vector<HiddenDirEntry> entries,
                          DecodeHiddenDir(plaintext));
  if (entries.size() != 1) {
    return Status::Corruption("escrow envelope holds unexpected records");
  }
  record.entry = std::move(entries[0]);
  return record;
}

StatusOr<std::vector<EscrowRecord>> KeyEscrow::List(
    const crypto::RsaPrivateKey& admin_key) {
  STEGFS_ASSIGN_OR_RETURN(std::vector<std::string> envelopes,
                          LoadEnvelopes());
  std::vector<EscrowRecord> records;
  records.reserve(envelopes.size());
  for (const std::string& raw : envelopes) {
    STEGFS_ASSIGN_OR_RETURN(EscrowRecord record,
                            DecryptRecord(admin_key, raw));
    records.push_back(std::move(record));
  }
  return records;
}

StatusOr<int> KeyEscrow::PurgeUser(const crypto::RsaPrivateKey& admin_key,
                                   const std::string& uid) {
  STEGFS_ASSIGN_OR_RETURN(std::vector<std::string> envelopes,
                          LoadEnvelopes());
  std::vector<std::string> kept;
  int removed = 0;
  for (const std::string& raw : envelopes) {
    STEGFS_ASSIGN_OR_RETURN(EscrowRecord record,
                            DecryptRecord(admin_key, raw));
    if (record.uid != uid) {
      kept.push_back(raw);
      continue;
    }
    // Remove the object tree (directories recursively).
    std::vector<HiddenDirEntry> frontier = {record.entry};
    while (!frontier.empty()) {
      HiddenDirEntry entry = std::move(frontier.back());
      frontier.pop_back();
      auto obj = HiddenObject::Open(fs_->VolumeCtx(),
                                    StegFs::PhysicalName(uid, entry.name),
                                    entry.fak);
      if (!obj.ok()) continue;  // already gone: purge is idempotent
      if ((*obj)->type() == HiddenType::kDirectory) {
        auto children = HiddenDirView::Load(obj->get());
        if (children.ok()) {
          for (HiddenDirEntry& child : *children) {
            frontier.push_back(std::move(child));
          }
        }
      }
      STEGFS_RETURN_IF_ERROR((*obj)->Remove());
      ++removed;
    }
  }
  STEGFS_RETURN_IF_ERROR(fs_->plain()->PersistMeta());
  STEGFS_RETURN_IF_ERROR(StoreEnvelopes(kept));
  return removed;
}

Status KeyEscrow::Defragment(const crypto::RsaPrivateKey& admin_key,
                             const std::string& uid,
                             const std::string& objname) {
  STEGFS_ASSIGN_OR_RETURN(std::vector<std::string> envelopes,
                          LoadEnvelopes());
  for (const std::string& raw : envelopes) {
    STEGFS_ASSIGN_OR_RETURN(EscrowRecord record,
                            DecryptRecord(admin_key, raw));
    if (record.uid != uid || record.entry.name != objname) continue;

    std::string physical = StegFs::PhysicalName(uid, objname);
    STEGFS_ASSIGN_OR_RETURN(
        std::unique_ptr<HiddenObject> obj,
        HiddenObject::Open(fs_->VolumeCtx(), physical, record.entry.fak));
    STEGFS_ASSIGN_OR_RETURN(std::string content, obj->ReadAll());
    HiddenType type = obj->type();
    STEGFS_RETURN_IF_ERROR(obj->Remove());
    // Recreate under the SAME (name, FAK): the owner's directory entries
    // remain valid, but every block is freshly drawn.
    STEGFS_ASSIGN_OR_RETURN(
        std::unique_ptr<HiddenObject> fresh,
        HiddenObject::Create(fs_->VolumeCtx(), physical, record.entry.fak,
                             type));
    STEGFS_RETURN_IF_ERROR(fresh->WriteAll(content));
    STEGFS_RETURN_IF_ERROR(fresh->Sync());
    return fs_->plain()->PersistMeta();
  }
  return Status::NotFound("no escrowed record for " + uid + "/" + objname);
}

}  // namespace stegfs
