#include "core/stegfs.h"

#include <algorithm>
#include <cassert>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/hex.h"

namespace stegfs {

namespace {

// Dummy hidden files are system objects: their names and keys derive from
// the dummy seed stored in the superblock, which is exactly the paper's
// concession that dummies "could be vulnerable to an attacker with
// administrator privileges" (abandoned blocks remain untraceable).
std::string DummyName(uint32_t i) {
  // Built piecewise: "\x00d..." inside one literal would parse as the hex
  // escape 0x0d and silently eat the 'd'.
  std::string name("\x02system", 7);
  name.push_back('\0');
  name += "dummy-" + std::to_string(i);
  return name;
}

std::string DummyKey(const std::array<uint8_t, 32>& seed, uint32_t i) {
  std::string prk(reinterpret_cast<const char*>(seed.data()), seed.size());
  auto key = crypto::HkdfExpand(prk, "dummy-key-" + std::to_string(i), 32);
  return std::string(key.begin(), key.end());
}

uint64_t SeedFromEntropy(const std::string& entropy, const char* label) {
  crypto::Sha256Digest d = crypto::Sha256::Hash2(entropy, label);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[i];
  return v;
}

}  // namespace

std::string StegFs::PhysicalName(const std::string& uid,
                                 const std::string& objname) {
  return uid + '\0' + objname;
}

std::string StegFs::UakDirName() { return std::string("\x01uakdir", 7); }

StegFs::StegFs(BlockDevice* device, std::unique_ptr<PlainFs> plain,
               const StegFsOptions& options)
    : device_(device),
      plain_(std::move(plain)),
      options_(options),
      steg_rng_(options.steg_rng_seed),
      fak_drbg_("stegfs-fak:" + std::to_string(options.steg_rng_seed)) {
  obs::MetricsRegistry* reg = plain_->metrics_registry();
  red_stats_.RegisterWith(reg);
  reg->RegisterHistogram("stegfs_hidden_read_seconds",
                         "Hidden object read latency", &hidden_read_ns_);
  reg->RegisterHistogram("stegfs_hidden_write_seconds",
                         "Hidden object write latency", &hidden_write_ns_);
  reg->RegisterHistogram("stegfs_hidden_truncate_seconds",
                         "Hidden object truncate latency",
                         &hidden_truncate_ns_);
}

StegFs::~StegFs() { (void)Flush(); }

HiddenVolume StegFs::VolumeCtx() {
  HiddenVolume vol;
  vol.cache = plain_->cache();
  vol.bitmap = plain_->bitmap();
  vol.layout = plain_->layout();
  vol.params = plain_->superblock().steg;
  vol.rng = &steg_rng_;
  vol.probe_limit = options_.probe_limit;
  vol.alloc_mu = &alloc_mu_;
  vol.readahead = plain_->readahead_blocks();
  vol.device = device_;
  vol.engine = plain_->io_engine();
  vol.durable = plain_->durable();
  vol.barrier = plain_->commit_barrier();
  vol.red_stats = &red_stats_;
  return vol;
}

Status StegFs::Format(BlockDevice* device, const StegFormatOptions& options) {
  const uint32_t bs = device->block_size();
  const uint64_t nb = device->num_blocks();

  // 1. Random-fill every block "so that used blocks do not stand out from
  //    the free blocks" (paper 3.1).
  {
    std::vector<uint8_t> buf(bs);
    if (options.fill_mode == FillMode::kFast) {
      Xoshiro fill(SeedFromEntropy(options.entropy, "fill"));
      for (uint64_t b = 0; b < nb; ++b) {
        fill.FillBytes(buf.data(), buf.size());
        STEGFS_RETURN_IF_ERROR(device->WriteBlock(b, buf.data()));
      }
    } else {
      crypto::CtrDrbg fill("stegfs-fill:" + options.entropy);
      for (uint64_t b = 0; b < nb; ++b) {
        fill.Generate(buf.data(), buf.size());
        STEGFS_RETURN_IF_ERROR(device->WriteBlock(b, buf.data()));
      }
    }
  }

  // 2. Plain file system on top (superblock, bitmap, central directory).
  FormatOptions fo;
  fo.num_inodes = options.num_inodes;
  fo.steg = options.params;
  fo.steg_formatted = true;
  fo.dummy_seed = crypto::Sha256::Hash2("stegfs-dummy-seed:", options.entropy);
  fo.journal_blocks = options.journal_blocks;
  STEGFS_RETURN_IF_ERROR(PlainFs::Format(device, fo));

  // 3. Abandon random blocks and create the dummy hidden files.
  MountOptions mo;
  mo.rng_seed = SeedFromEntropy(options.entropy, "mount");
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<PlainFs> plain,
                          PlainFs::Mount(device, mo));

  Xoshiro abandon_rng(SeedFromEntropy(options.entropy, "abandon"));
  const Layout& layout = plain->layout();
  uint64_t abandoned_count = static_cast<uint64_t>(
      static_cast<double>(layout.data_blocks()) *
      options.params.abandoned_fraction);
  for (uint64_t i = 0; i < abandoned_count; ++i) {
    auto b = plain->bitmap()->AllocateByPolicy(AllocPolicy::kRandom,
                                               &abandon_rng);
    if (!b.ok()) return b.status();
    // Content stays as format noise; the block is now untraceable.
  }

  StegFsOptions so;
  so.steg_rng_seed = SeedFromEntropy(options.entropy, "steg-rng");
  Xoshiro dummy_rng(SeedFromEntropy(options.entropy, "dummy-rng"));
  STEGFS_RETURN_IF_ERROR(CreateDummyFiles(plain.get(), &dummy_rng, so));

  STEGFS_RETURN_IF_ERROR(plain->Flush());
  return Status::OK();
}

Status StegFs::CreateDummyFiles(PlainFs* plain, Xoshiro* rng,
                                const StegFsOptions& opts) {
  const Superblock& sb = plain->superblock();
  HiddenVolume vol;
  vol.cache = plain->cache();
  vol.bitmap = plain->bitmap();
  vol.layout = plain->layout();
  vol.params = sb.steg;
  vol.rng = rng;
  vol.probe_limit = opts.probe_limit;

  const uint64_t avg = std::max<uint64_t>(sb.steg.dummy_file_avg_bytes, 1);
  for (uint32_t i = 0; i < sb.steg.dummy_file_count; ++i) {
    STEGFS_ASSIGN_OR_RETURN(
        std::unique_ptr<HiddenObject> dummy,
        HiddenObject::Create(vol, DummyName(i), DummyKey(sb.dummy_seed, i),
                             HiddenType::kFile));
    // Size uniform in [avg/2, 3*avg/2): mean = avg (Table 1).
    uint64_t size = avg / 2 + rng->Uniform(avg);
    std::string content(size, '\0');
    rng->FillBytes(reinterpret_cast<uint8_t*>(content.data()), size);
    STEGFS_RETURN_IF_ERROR(dummy->WriteAll(content));
    STEGFS_RETURN_IF_ERROR(dummy->Sync());
  }
  return plain->PersistMeta();
}

StatusOr<std::unique_ptr<StegFs>> StegFs::Mount(BlockDevice* device,
                                                const StegFsOptions& options) {
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<PlainFs> plain,
                          PlainFs::Mount(device, options.mount));
  if (!plain->superblock().steg_formatted) {
    return Status::FailedPrecondition(
        "volume was not steg-formatted (no random fill): refusing to hide "
        "data on it");
  }
  return std::unique_ptr<StegFs>(
      new StegFs(device, std::move(plain), options));
}

std::string StegFs::FreshFak() {
  std::lock_guard<std::mutex> lock(fak_mu_);
  return fak_drbg_.GenerateString(32);
}

StatusOr<std::unique_ptr<HiddenObject>> StegFs::OpenUakDir(
    const std::string& uid, const std::string& uak, bool create_if_missing) {
  std::string name = PhysicalName(uid, UakDirName());
  HiddenVolume vol = VolumeCtx();
  auto opened = HiddenObject::Open(vol, name, uak);
  if (opened.ok() || !opened.status().IsNotFound() || !create_if_missing) {
    return opened;
  }
  return HiddenObject::Create(vol, name, uak, HiddenType::kDirectory);
}

StatusOr<std::unique_ptr<HiddenObject>> StegFs::OpenByEntry(
    const std::string& uid, const HiddenDirEntry& entry) {
  return HiddenObject::Open(VolumeCtx(), PhysicalName(uid, entry.name),
                            entry.fak);
}

StatusOr<StegFs::ResolvedEntry> StegFs::ResolveEntry(const std::string& uid,
                                                     const std::string& objname,
                                                     const std::string& uak) {
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<HiddenObject> uakdir,
                          OpenUakDir(uid, uak, /*create_if_missing=*/false));
  STEGFS_ASSIGN_OR_RETURN(std::vector<HiddenDirEntry> entries,
                          HiddenDirView::Load(uakdir.get()));
  ResolvedEntry resolved;
  for (;;) {
    int idx = HiddenDirView::Find(entries, objname);
    if (idx >= 0) {
      resolved.entry = entries[idx];
      return resolved;
    }
    // Descend into the hidden directory whose name prefixes objname.
    const HiddenDirEntry* next = nullptr;
    for (const HiddenDirEntry& e : entries) {
      if (e.type != HiddenType::kDirectory) continue;
      if (objname.size() > e.name.size() + 1 &&
          objname.compare(0, e.name.size(), e.name) == 0 &&
          objname[e.name.size()] == '/') {
        if (next == nullptr || e.name.size() > next->name.size()) {
          next = &e;
        }
      }
    }
    if (next == nullptr) {
      return Status::NotFound("object not reachable from UAK directory: " +
                              objname);
    }
    HiddenDirEntry parent = *next;
    STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<HiddenObject> dir,
                            OpenByEntry(uid, parent));
    STEGFS_ASSIGN_OR_RETURN(entries, HiddenDirView::Load(dir.get()));
    resolved.in_uak_dir = false;
    resolved.parent = std::move(parent);
  }
}

Status StegFs::RewriteContainer(const std::string& uid,
                                const std::string& uak,
                                const ResolvedEntry& resolved,
                                const HiddenDirEntry* replacement) {
  std::unique_ptr<HiddenObject> container;
  if (resolved.in_uak_dir) {
    STEGFS_ASSIGN_OR_RETURN(container,
                            OpenUakDir(uid, uak, /*create_if_missing=*/false));
  } else {
    STEGFS_ASSIGN_OR_RETURN(container, OpenByEntry(uid, resolved.parent));
  }
  STEGFS_ASSIGN_OR_RETURN(std::vector<HiddenDirEntry> entries,
                          HiddenDirView::Load(container.get()));
  HiddenDirView::Erase(&entries, resolved.entry.name);
  if (replacement != nullptr) {
    HiddenDirView::Upsert(&entries, *replacement);
  }
  STEGFS_RETURN_IF_ERROR(HiddenDirView::Store(container.get(), entries));
  return plain_->PersistMeta();
}

Status StegFs::StegCreate(const std::string& uid, const std::string& objname,
                          const std::string& uak, HiddenType type,
                          RedundancyPolicy redundancy) {
  STEGFS_RETURN_IF_ERROR(plain_->health()->CheckWritable());
  auto session = sessions_.GetOrCreate(uid);
  std::lock_guard<std::mutex> ns_lock(session->ns_mu());
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<HiddenObject> uakdir,
                          OpenUakDir(uid, uak, /*create_if_missing=*/true));
  STEGFS_ASSIGN_OR_RETURN(std::vector<HiddenDirEntry> entries,
                          HiddenDirView::Load(uakdir.get()));
  if (HiddenDirView::Find(entries, objname) >= 0) {
    return Status::AlreadyExists("hidden object already registered: " +
                                 objname);
  }

  HiddenDirEntry entry;
  entry.name = objname;
  entry.type = type;
  entry.fak = FreshFak();
  STEGFS_ASSIGN_OR_RETURN(
      std::unique_ptr<HiddenObject> obj,
      HiddenObject::Create(VolumeCtx(), PhysicalName(uid, objname), entry.fak,
                           type, redundancy));
  STEGFS_RETURN_IF_ERROR(obj->Sync());

  HiddenDirView::Upsert(&entries, std::move(entry));
  STEGFS_RETURN_IF_ERROR(HiddenDirView::Store(uakdir.get(), entries));
  return plain_->PersistMeta();
}

StatusOr<std::shared_ptr<concurrency::SessionObject>> StegFs::AcquireConnected(
    const std::string& uid, const std::string& objname) {
  auto session = sessions_.Find(uid);
  std::shared_ptr<concurrency::SessionObject> so =
      session == nullptr ? nullptr : session->Find(objname);
  if (so == nullptr) {
    return Status::FailedPrecondition("object not connected: " + objname);
  }
  return so;
}

Status StegFs::StegConnect(const std::string& uid, const std::string& objname,
                           const std::string& uak) {
  auto session = sessions_.GetOrCreate(uid);
  std::lock_guard<std::mutex> ns_lock(session->ns_mu());
  STEGFS_ASSIGN_OR_RETURN(ResolvedEntry resolved,
                          ResolveEntry(uid, objname, uak));

  // Connect this object; for directories, recursively connect offspring.
  std::vector<HiddenDirEntry> frontier = {resolved.entry};
  while (!frontier.empty()) {
    HiddenDirEntry entry = std::move(frontier.back());
    frontier.pop_back();
    if (session->Contains(entry.name)) continue;
    STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<HiddenObject> obj,
                            OpenByEntry(uid, entry));
    if (obj->type() == HiddenType::kDirectory) {
      STEGFS_ASSIGN_OR_RETURN(std::vector<HiddenDirEntry> children,
                              HiddenDirView::Load(obj.get()));
      for (HiddenDirEntry& child : children) {
        frontier.push_back(std::move(child));
      }
    }
    session->Insert(entry.name, entry.fak, std::move(obj));
  }
  return Status::OK();
}

Status StegFs::StegDisconnect(const std::string& uid,
                              const std::string& objname) {
  auto session = sessions_.Find(uid);
  std::shared_ptr<concurrency::SessionObject> so =
      session == nullptr ? nullptr : session->Remove(objname);
  if (so == nullptr) {
    return Status::NotFound("object not connected: " + objname);
  }
  {
    std::lock_guard<std::mutex> obj_lock(so->mu);
    STEGFS_RETURN_IF_ERROR(so->object->Sync());
  }
  return plain_->PersistMeta();
}

Status StegFs::DisconnectAll(const std::string& uid) {
  auto session = sessions_.Find(uid);
  if (session == nullptr) return plain_->PersistMeta();
  for (const auto& so : session->RemoveAll()) {
    std::lock_guard<std::mutex> obj_lock(so->mu);
    STEGFS_RETURN_IF_ERROR(so->object->Sync());
  }
  return plain_->PersistMeta();
}

StatusOr<std::string> StegFs::HiddenReadAll(const std::string& uid,
                                            const std::string& objname) {
  obs::Span span(plain_->trace_recorder(), "hidden.read_all", "hidden");
  obs::LatencyTimer timer(&hidden_read_ns_);
  STEGFS_ASSIGN_OR_RETURN(auto so, AcquireConnected(uid, objname));
  std::lock_guard<std::mutex> obj_lock(so->mu);
  if (so->defunct) {
    return Status::FailedPrecondition("object not connected: " + objname);
  }
  return so->object->ReadAll();
}

Status StegFs::HiddenRead(const std::string& uid, const std::string& objname,
                          uint64_t offset, uint64_t n, std::string* out) {
  obs::Span span(plain_->trace_recorder(), "hidden.read", "hidden");
  obs::LatencyTimer timer(&hidden_read_ns_);
  STEGFS_ASSIGN_OR_RETURN(auto so, AcquireConnected(uid, objname));
  std::lock_guard<std::mutex> obj_lock(so->mu);
  if (so->defunct) {
    return Status::FailedPrecondition("object not connected: " + objname);
  }
  return so->object->Read(offset, n, out);
}

// Per-call header persistence after a hidden mutation. On a non-durable
// volume this is the historical cheap header rewrite (one cache write).
// On a DURABLE volume every HiddenObject::Sync is a full dual-header
// commit with real write barriers, so per-call commits would turn every
// write into an O_SYNC transaction; instead the object stays dirty and
// commits at the group boundaries every path already has — StegFs::Flush,
// disconnect, unmount (the object destructor) — exactly a journaling
// file system's fsync contract.
Status StegFs::SyncAfterMutation(HiddenObject* obj) {
  if (plain_->durable()) return Status::OK();
  return obj->Sync();
}

Status StegFs::HiddenWriteAll(const std::string& uid,
                              const std::string& objname,
                              const std::string& data) {
  obs::Span span(plain_->trace_recorder(), "hidden.write_all", "hidden");
  obs::LatencyTimer timer(&hidden_write_ns_);
  STEGFS_RETURN_IF_ERROR(plain_->health()->CheckWritable());
  STEGFS_ASSIGN_OR_RETURN(auto so, AcquireConnected(uid, objname));
  {
    std::lock_guard<std::mutex> obj_lock(so->mu);
    if (so->defunct) {
      return Status::FailedPrecondition("object not connected: " + objname);
    }
    STEGFS_RETURN_IF_ERROR(so->object->WriteAll(data));
    STEGFS_RETURN_IF_ERROR(SyncAfterMutation(so->object.get()));
  }
  return plain_->PersistMeta();
}

Status StegFs::HiddenWrite(const std::string& uid, const std::string& objname,
                           uint64_t offset, const std::string& data) {
  obs::Span span(plain_->trace_recorder(), "hidden.write", "hidden");
  obs::LatencyTimer timer(&hidden_write_ns_);
  STEGFS_RETURN_IF_ERROR(plain_->health()->CheckWritable());
  STEGFS_ASSIGN_OR_RETURN(auto so, AcquireConnected(uid, objname));
  {
    std::lock_guard<std::mutex> obj_lock(so->mu);
    if (so->defunct) {
      return Status::FailedPrecondition("object not connected: " + objname);
    }
    STEGFS_RETURN_IF_ERROR(so->object->Write(offset, data));
    STEGFS_RETURN_IF_ERROR(SyncAfterMutation(so->object.get()));
  }
  return plain_->PersistMeta();
}

Status StegFs::HiddenTruncate(const std::string& uid,
                              const std::string& objname, uint64_t new_size) {
  obs::Span span(plain_->trace_recorder(), "hidden.truncate", "hidden");
  obs::LatencyTimer timer(&hidden_truncate_ns_);
  STEGFS_RETURN_IF_ERROR(plain_->health()->CheckWritable());
  STEGFS_ASSIGN_OR_RETURN(auto so, AcquireConnected(uid, objname));
  {
    std::lock_guard<std::mutex> obj_lock(so->mu);
    if (so->defunct) {
      return Status::FailedPrecondition("object not connected: " + objname);
    }
    STEGFS_RETURN_IF_ERROR(so->object->Truncate(new_size));
    STEGFS_RETURN_IF_ERROR(SyncAfterMutation(so->object.get()));
  }
  return plain_->PersistMeta();
}

StatusOr<uint64_t> StegFs::HiddenSize(const std::string& uid,
                                      const std::string& objname) {
  STEGFS_ASSIGN_OR_RETURN(auto so, AcquireConnected(uid, objname));
  std::lock_guard<std::mutex> obj_lock(so->mu);
  if (so->defunct) {
    return Status::FailedPrecondition("object not connected: " + objname);
  }
  return so->object->size();
}

std::vector<std::string> StegFs::ConnectedObjects(
    const std::string& uid) const {
  auto session = sessions_.Find(uid);
  if (session == nullptr) return {};
  return session->Names();
}

Status StegFs::RemoveTree(const std::string& uid, const HiddenDirEntry& entry,
                          concurrency::Session* session) {
  // If the object is connected, detach it first and destroy it THROUGH the
  // connected instance under its object lock — that drains any in-flight
  // I/O on it before its blocks are released.
  std::shared_ptr<concurrency::SessionObject> so =
      session == nullptr ? nullptr : session->Remove(entry.name);
  std::unique_ptr<HiddenObject> opened;
  HiddenObject* obj = nullptr;
  std::unique_lock<std::mutex> obj_lock;
  if (so != nullptr) {
    obj_lock = std::unique_lock<std::mutex>(so->mu);
    obj = so->object.get();
  } else {
    STEGFS_ASSIGN_OR_RETURN(opened, OpenByEntry(uid, entry));
    obj = opened.get();
  }
  if (obj->type() == HiddenType::kDirectory) {
    STEGFS_ASSIGN_OR_RETURN(std::vector<HiddenDirEntry> children,
                            HiddenDirView::Load(obj));
    for (const HiddenDirEntry& child : children) {
      STEGFS_RETURN_IF_ERROR(RemoveTree(uid, child, session));
    }
  }
  if (so != nullptr) so->defunct = true;
  return obj->Remove();
}

Status StegFs::HiddenRemove(const std::string& uid, const std::string& objname,
                            const std::string& uak) {
  STEGFS_RETURN_IF_ERROR(plain_->health()->CheckWritable());
  auto session = sessions_.GetOrCreate(uid);
  std::lock_guard<std::mutex> ns_lock(session->ns_mu());
  STEGFS_ASSIGN_OR_RETURN(ResolvedEntry resolved,
                          ResolveEntry(uid, objname, uak));
  STEGFS_RETURN_IF_ERROR(RemoveTree(uid, resolved.entry, session.get()));
  return RewriteContainer(uid, uak, resolved, /*replacement=*/nullptr);
}

Status StegFs::HidePlainTree(const std::string& uid,
                             const std::string& plain_path,
                             const std::string& objname,
                             std::vector<HiddenDirEntry>* parent_entries) {
  STEGFS_ASSIGN_OR_RETURN(FileInfo info, plain_->Stat(plain_path));
  HiddenDirEntry entry;
  entry.name = objname;
  entry.fak = FreshFak();

  if (info.type == InodeType::kFile) {
    entry.type = HiddenType::kFile;
    STEGFS_ASSIGN_OR_RETURN(std::string content, plain_->ReadFile(plain_path));
    STEGFS_ASSIGN_OR_RETURN(
        std::unique_ptr<HiddenObject> obj,
        HiddenObject::Create(VolumeCtx(), PhysicalName(uid, objname),
                             entry.fak, HiddenType::kFile));
    STEGFS_RETURN_IF_ERROR(obj->WriteAll(content));
    STEGFS_RETURN_IF_ERROR(obj->Sync());
    STEGFS_RETURN_IF_ERROR(plain_->Unlink(plain_path));
  } else {
    entry.type = HiddenType::kDirectory;
    STEGFS_ASSIGN_OR_RETURN(
        std::unique_ptr<HiddenObject> obj,
        HiddenObject::Create(VolumeCtx(), PhysicalName(uid, objname),
                             entry.fak, HiddenType::kDirectory));
    STEGFS_ASSIGN_OR_RETURN(std::vector<DirEntry> children,
                            plain_->List(plain_path));
    std::vector<HiddenDirEntry> child_entries;
    for (const DirEntry& child : children) {
      STEGFS_RETURN_IF_ERROR(
          HidePlainTree(uid, plain_path + "/" + child.name,
                        objname + "/" + child.name, &child_entries));
    }
    STEGFS_RETURN_IF_ERROR(HiddenDirView::Store(obj.get(), child_entries));
    STEGFS_RETURN_IF_ERROR(plain_->RmDir(plain_path));
  }
  parent_entries->push_back(std::move(entry));
  return Status::OK();
}

Status StegFs::StegHide(const std::string& uid, const std::string& pathname,
                        const std::string& objname, const std::string& uak) {
  STEGFS_RETURN_IF_ERROR(plain_->health()->CheckWritable());
  auto session = sessions_.GetOrCreate(uid);
  std::lock_guard<std::mutex> ns_lock(session->ns_mu());
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<HiddenObject> uakdir,
                          OpenUakDir(uid, uak, /*create_if_missing=*/true));
  STEGFS_ASSIGN_OR_RETURN(std::vector<HiddenDirEntry> entries,
                          HiddenDirView::Load(uakdir.get()));
  if (HiddenDirView::Find(entries, objname) >= 0) {
    return Status::AlreadyExists("hidden object already registered: " +
                                 objname);
  }
  std::vector<HiddenDirEntry> new_entries;
  STEGFS_RETURN_IF_ERROR(HidePlainTree(uid, pathname, objname, &new_entries));
  assert(new_entries.size() == 1);
  HiddenDirView::Upsert(&entries, std::move(new_entries[0]));
  STEGFS_RETURN_IF_ERROR(HiddenDirView::Store(uakdir.get(), entries));
  return plain_->PersistMeta();
}

Status StegFs::UnhideTree(const std::string& uid,
                          const std::string& plain_path,
                          const HiddenDirEntry& entry,
                          concurrency::Session* session) {
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<HiddenObject> obj,
                          OpenByEntry(uid, entry));
  if (obj->type() == HiddenType::kFile) {
    STEGFS_ASSIGN_OR_RETURN(std::string content, obj->ReadAll());
    STEGFS_RETURN_IF_ERROR(plain_->WriteFile(plain_path, content));
  } else {
    STEGFS_RETURN_IF_ERROR(plain_->MkDir(plain_path));
    STEGFS_ASSIGN_OR_RETURN(std::vector<HiddenDirEntry> children,
                            HiddenDirView::Load(obj.get()));
    for (const HiddenDirEntry& child : children) {
      // Child names are full object paths; the leaf is the path suffix.
      std::string leaf = child.name.substr(child.name.find_last_of('/') + 1);
      STEGFS_RETURN_IF_ERROR(
          UnhideTree(uid, plain_path + "/" + leaf, child, session));
    }
  }
  // Drop any connected instance (draining its in-flight I/O) before the
  // on-disk object goes away.
  std::shared_ptr<concurrency::SessionObject> so =
      session == nullptr ? nullptr : session->Remove(entry.name);
  if (so != nullptr) {
    std::lock_guard<std::mutex> drain(so->mu);
    so->defunct = true;
  }
  return obj->Remove();
}

Status StegFs::StegUnhide(const std::string& uid, const std::string& pathname,
                          const std::string& objname, const std::string& uak) {
  STEGFS_RETURN_IF_ERROR(plain_->health()->CheckWritable());
  auto session = sessions_.GetOrCreate(uid);
  std::lock_guard<std::mutex> ns_lock(session->ns_mu());
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<HiddenObject> uakdir,
                          OpenUakDir(uid, uak, /*create_if_missing=*/false));
  STEGFS_ASSIGN_OR_RETURN(std::vector<HiddenDirEntry> entries,
                          HiddenDirView::Load(uakdir.get()));
  int idx = HiddenDirView::Find(entries, objname);
  if (idx < 0) {
    return Status::NotFound("object not in UAK directory: " + objname);
  }
  STEGFS_RETURN_IF_ERROR(
      UnhideTree(uid, pathname, entries[idx], session.get()));
  HiddenDirView::Erase(&entries, objname);
  STEGFS_RETURN_IF_ERROR(HiddenDirView::Store(uakdir.get(), entries));
  return plain_->PersistMeta();
}

Status StegFs::StegGetEntry(const std::string& uid, const std::string& objname,
                            const std::string& uak,
                            const std::string& entryfile_path,
                            const crypto::RsaPublicKey& recipient_key,
                            const std::string& entropy) {
  auto session = sessions_.GetOrCreate(uid);
  std::lock_guard<std::mutex> ns_lock(session->ns_mu());
  STEGFS_ASSIGN_OR_RETURN(ResolvedEntry resolved,
                          ResolveEntry(uid, objname, uak));
  std::string record = EncodeHiddenDir({resolved.entry});
  STEGFS_ASSIGN_OR_RETURN(std::string ciphertext,
                          crypto::RsaEncrypt(recipient_key, record, entropy));
  return plain_->WriteFile(entryfile_path, ciphertext);
}

Status StegFs::StegAddEntry(const std::string& uid,
                            const std::string& entryfile_path,
                            const crypto::RsaPrivateKey& private_key,
                            const std::string& uak) {
  STEGFS_RETURN_IF_ERROR(plain_->health()->CheckWritable());
  auto session = sessions_.GetOrCreate(uid);
  std::lock_guard<std::mutex> ns_lock(session->ns_mu());
  STEGFS_ASSIGN_OR_RETURN(std::string ciphertext,
                          plain_->ReadFile(entryfile_path));
  STEGFS_ASSIGN_OR_RETURN(std::string record,
                          crypto::RsaDecrypt(private_key, ciphertext));
  STEGFS_ASSIGN_OR_RETURN(std::vector<HiddenDirEntry> incoming,
                          DecodeHiddenDir(record));
  if (incoming.size() != 1) {
    return Status::Corruption("entry file holds an unexpected record count");
  }
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<HiddenObject> uakdir,
                          OpenUakDir(uid, uak, /*create_if_missing=*/true));
  STEGFS_ASSIGN_OR_RETURN(std::vector<HiddenDirEntry> entries,
                          HiddenDirView::Load(uakdir.get()));
  HiddenDirView::Upsert(&entries, std::move(incoming[0]));
  STEGFS_RETURN_IF_ERROR(HiddenDirView::Store(uakdir.get(), entries));
  // "...at which time the file information is added to the UAK's directory
  // and the ciphertext is destroyed."
  STEGFS_RETURN_IF_ERROR(plain_->Unlink(entryfile_path));
  return plain_->PersistMeta();
}

Status StegFs::RevokeSharing(const std::string& uid,
                             const std::string& objname,
                             const std::string& uak,
                             const std::string& new_objname) {
  STEGFS_RETURN_IF_ERROR(plain_->health()->CheckWritable());
  auto session = sessions_.GetOrCreate(uid);
  std::lock_guard<std::mutex> ns_lock(session->ns_mu());
  STEGFS_ASSIGN_OR_RETURN(ResolvedEntry resolved,
                          ResolveEntry(uid, objname, uak));
  const HiddenDirEntry& old_entry = resolved.entry;
  if (old_entry.type != HiddenType::kFile) {
    return Status::NotSupported("revocation of shared directories");
  }

  // "StegFS first makes a new copy with a fresh FAK and possibly a
  // different file name, then removes the original file."
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<HiddenObject> old_obj,
                          OpenByEntry(uid, old_entry));
  STEGFS_ASSIGN_OR_RETURN(std::string content, old_obj->ReadAll());

  HiddenDirEntry new_entry;
  new_entry.name = new_objname;
  new_entry.type = HiddenType::kFile;
  new_entry.fak = FreshFak();
  STEGFS_ASSIGN_OR_RETURN(
      std::unique_ptr<HiddenObject> new_obj,
      HiddenObject::Create(VolumeCtx(), PhysicalName(uid, new_objname),
                           new_entry.fak, HiddenType::kFile));
  STEGFS_RETURN_IF_ERROR(new_obj->WriteAll(content));
  STEGFS_RETURN_IF_ERROR(new_obj->Sync());
  if (auto so = session->Remove(objname)) {
    std::lock_guard<std::mutex> drain(so->mu);
    so->defunct = true;
  }
  STEGFS_RETURN_IF_ERROR(old_obj->Remove());

  return RewriteContainer(uid, uak, resolved, &new_entry);
}

Status StegFs::MaintenanceTick() {
  STEGFS_RETURN_IF_ERROR(plain_->health()->CheckWritable());
  // One tick at a time; user I/O keeps flowing (the dummies are touched by
  // nobody else, and the shared rng draws below take the allocation lock
  // in short sections, never across an object operation).
  std::lock_guard<std::mutex> maint_lock(maint_mu_);
  const Superblock& sb = plain_->superblock();
  HiddenVolume vol = VolumeCtx();
  const uint64_t avg = std::max<uint64_t>(sb.steg.dummy_file_avg_bytes, 1);
  for (uint32_t i = 0; i < sb.steg.dummy_file_count; ++i) {
    auto dummy =
        HiddenObject::Open(vol, DummyName(i), DummyKey(sb.dummy_seed, i));
    if (!dummy.ok()) return dummy.status();
    HiddenObject* obj = dummy->get();

    uint64_t size = obj->size();
    uint64_t churn = std::max<uint64_t>(avg / 16, vol.layout.block_size);
    std::string noise(churn, '\0');
    bool grow;
    {
      std::lock_guard<std::mutex> alloc_lock(alloc_mu_);
      steg_rng_.FillBytes(reinterpret_cast<uint8_t*>(noise.data()),
                          noise.size());
      grow = steg_rng_.Bernoulli(0.5);
    }
    // Keep the file near its average size while continually allocating and
    // releasing blocks, so bitmap diffs always show churn.
    if (size > avg + avg / 2) {
      STEGFS_RETURN_IF_ERROR(obj->Truncate(size - churn));
    } else if (size < avg / 2 + 1) {
      STEGFS_RETURN_IF_ERROR(obj->Write(size, noise));
    } else if (grow) {
      STEGFS_RETURN_IF_ERROR(obj->Write(size, noise));
    } else {
      STEGFS_RETURN_IF_ERROR(obj->Truncate(size - std::min(size, churn)));
    }
    // Rewrite a random interior range.
    uint64_t new_size = obj->size();
    if (new_size > churn) {
      uint64_t off;
      {
        std::lock_guard<std::mutex> alloc_lock(alloc_mu_);
        off = steg_rng_.Uniform(new_size - churn);
      }
      STEGFS_RETURN_IF_ERROR(obj->Write(off, noise));
    }
    STEGFS_RETURN_IF_ERROR(obj->Sync());
  }
  return plain_->PersistMeta();
}

Status StegFs::Fsck(journal::FsckReport* out) {
  STEGFS_RETURN_IF_ERROR(plain_->Fsck(out));
  // Hidden-side scrub: audit every connected redundant object. The
  // session table holds exactly the keys fsck may use; dirty state a
  // heal produced commits immediately (Sync) so the repaired map chain
  // survives a crash right after fsck.
  for (const auto& session : sessions_.Snapshot()) {
    for (const auto& so : session->Snapshot()) {
      std::lock_guard<std::mutex> obj_lock(so->mu);
      if (so->defunct) continue;
      if (!so->object->redundancy_policy().enabled()) continue;
      out->hidden_objects_scanned++;
      RedundancyScrubReport rep;
      STEGFS_RETURN_IF_ERROR(so->object->ScrubShares(&rep));
      STEGFS_RETURN_IF_ERROR(so->object->Sync());
      out->hidden_stripes_checked += rep.stripes_checked;
      out->hidden_degraded_stripes += rep.degraded_stripes;
      out->hidden_healed_shares += rep.healed_shares;
      out->hidden_unrecoverable_stripes += rep.unrecoverable_stripes;
      if (rep.degraded_stripes != 0 || rep.unrecoverable_stripes != 0) {
        out->clean = false;
      }
    }
  }
  return Status::OK();
}

StatusOr<HiddenObject*> StegFs::ConnectedForTesting(
    const std::string& uid, const std::string& objname) {
  STEGFS_ASSIGN_OR_RETURN(auto so, AcquireConnected(uid, objname));
  return so->object.get();
}

Status StegFs::Flush() {
  for (const auto& session : sessions_.Snapshot()) {
    for (const auto& so : session->Snapshot()) {
      std::lock_guard<std::mutex> obj_lock(so->mu);
      if (so->defunct) continue;
      STEGFS_RETURN_IF_ERROR(so->object->Sync());
    }
  }
  return plain_->Flush();
}

SpaceReport StegFs::ReportSpace() {
  SpaceReport r;
  const Layout& l = plain_->layout();
  r.block_size = l.block_size;
  r.total_blocks = l.num_blocks;
  r.metadata_blocks = l.data_start;
  r.free_blocks = plain_->bitmap()->free_count();
  r.allocated_blocks = l.num_blocks - r.free_blocks;
  r.plain_file_bytes = plain_->TotalPlainBytes();
  return r;
}

}  // namespace stegfs
