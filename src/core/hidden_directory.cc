#include "core/hidden_directory.h"

#include "util/coding.h"

namespace stegfs {

std::string EncodeHiddenDir(const std::vector<HiddenDirEntry>& entries) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(entries.size()));
  for (const HiddenDirEntry& e : entries) {
    PutLengthPrefixed(&out, e.name);
    out.push_back(static_cast<char>(e.type));
    PutLengthPrefixed(&out, e.fak);
  }
  return out;
}

StatusOr<std::vector<HiddenDirEntry>> DecodeHiddenDir(
    const std::string& blob) {
  Decoder dec(blob);
  uint32_t count;
  if (!dec.GetFixed32(&count)) {
    return Status::Corruption("hidden directory truncated (count)");
  }
  // Each entry occupies at least two 4-byte length prefixes plus one type
  // byte, so a hostile count larger than remaining/9 cannot possibly decode;
  // reject it before reserving rather than letting reserve() over-allocate.
  constexpr size_t kMinEntryBytes = 4 + 1 + 4;
  if (count > dec.remaining() / kMinEntryBytes) {
    return Status::Corruption("hidden directory count exceeds payload");
  }
  std::vector<HiddenDirEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    HiddenDirEntry e;
    uint8_t type_byte;
    if (!dec.GetLengthPrefixed(&e.name) || !dec.GetBytes(&type_byte, 1) ||
        !dec.GetLengthPrefixed(&e.fak)) {
      return Status::Corruption("hidden directory truncated (entry)");
    }
    if (type_byte != static_cast<uint8_t>(HiddenType::kFile) &&
        type_byte != static_cast<uint8_t>(HiddenType::kDirectory)) {
      return Status::Corruption("hidden directory entry has bad type");
    }
    e.type = static_cast<HiddenType>(type_byte);
    entries.push_back(std::move(e));
  }
  return entries;
}

StatusOr<std::vector<HiddenDirEntry>> HiddenDirView::Load(HiddenObject* dir) {
  if (dir->type() != HiddenType::kDirectory) {
    return Status::InvalidArgument("hidden object is not a directory");
  }
  if (dir->size() == 0) return std::vector<HiddenDirEntry>{};
  STEGFS_ASSIGN_OR_RETURN(std::string blob, dir->ReadAll());
  return DecodeHiddenDir(blob);
}

Status HiddenDirView::Store(HiddenObject* dir,
                            const std::vector<HiddenDirEntry>& entries) {
  if (dir->type() != HiddenType::kDirectory) {
    return Status::InvalidArgument("hidden object is not a directory");
  }
  STEGFS_RETURN_IF_ERROR(dir->WriteAll(EncodeHiddenDir(entries)));
  return dir->Sync();
}

int HiddenDirView::Find(const std::vector<HiddenDirEntry>& entries,
                        const std::string& name) {
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void HiddenDirView::Upsert(std::vector<HiddenDirEntry>* entries,
                           HiddenDirEntry entry) {
  int idx = Find(*entries, entry.name);
  if (idx >= 0) {
    (*entries)[idx] = std::move(entry);
  } else {
    entries->push_back(std::move(entry));
  }
}

bool HiddenDirView::Erase(std::vector<HiddenDirEntry>* entries,
                          const std::string& name) {
  int idx = Find(*entries, name);
  if (idx < 0) return false;
  entries->erase(entries->begin() + idx);
  return true;
}

}  // namespace stegfs
