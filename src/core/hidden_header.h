// The hidden-object header (paper figure 2). One device block, encrypted
// with the object's File Access Key, holding:
//   - the signature that "uniquely identifies the file"
//     (SHA-256 of physical name || FAK; verified after decrypting a
//     locator candidate),
//   - the object's inode (the "link to an inode table that indexes all the
//     data blocks"),
//   - the internal free-block pool (the "linked list of pointers to free
//     blocks held by the file"; stored inline — equivalent content, single
//     block — see DESIGN.md),
//   - size / mtime / type metadata that a plain file would keep in the
//     central directory.
#ifndef STEGFS_CORE_HIDDEN_HEADER_H_
#define STEGFS_CORE_HIDDEN_HEADER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "fs/inode.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

// Upper bound on pool entries representable in one 512-byte header block,
// alongside the commit-protocol trailer (seq + partner + checksum; 28
// bytes — what brought this down from the pre-journal 96).
inline constexpr uint32_t kMaxFreePool = 94;

enum class HiddenType : uint8_t {
  kFile = 1,       // 'f' in the paper's API
  kDirectory = 2,  // 'd'
};

// Per-object redundancy policy (PR 6): how extents are protected against
// the paper's central availability hazard — hidden blocks look free to
// plain allocations and can be silently overwritten.
enum class RedundancyKind : uint8_t {
  kNone = 0,       // bare extents (the paper's baseline)
  kReplicate = 1,  // n copies of every block (k == 1)
  kIda = 2,        // Rabin dispersal: any k of n shares reconstruct
};

// Most shares a stripe can have; bounds the per-stripe map entry and keeps
// the matrix solve tiny.
inline constexpr uint8_t kMaxRedundancyShares = 16;

struct RedundancyPolicy {
  RedundancyKind kind = RedundancyKind::kNone;
  uint8_t k = 1;  // data shares per stripe
  uint8_t n = 1;  // total shares per stripe (n - k parity)

  static RedundancyPolicy None() { return {}; }
  static RedundancyPolicy Replicate(uint8_t copies) {
    return {RedundancyKind::kReplicate, 1, copies};
  }
  static RedundancyPolicy Ida(uint8_t k, uint8_t n) {
    return {RedundancyKind::kIda, k, n};
  }

  bool enabled() const { return kind != RedundancyKind::kNone; }
  uint8_t parity() const { return enabled() ? n - k : 0; }
  // Shares an object can lose per stripe without data loss.
  uint8_t tolerance() const { return parity(); }
  bool Valid() const {
    switch (kind) {
      case RedundancyKind::kNone:
        return true;
      case RedundancyKind::kReplicate:
        return k == 1 && n >= 2 && n <= kMaxRedundancyShares;
      case RedundancyKind::kIda:
        return k >= 2 && n > k && n <= kMaxRedundancyShares;
    }
    return false;
  }
};

// Trailing commit-protocol fields, packed at the END of the header block:
// [seq u64][partner u32][checksum 16B] — SHA-256 (truncated) over
// everything before the checksum. All three decode as zero from a header
// written before the crash-consistency subsystem (legacy accept); any
// torn block yields a nonzero mismatching checksum and is rejected, which
// is what lets the dual-header protocol pick the surviving image.
inline constexpr size_t kHeaderTrailerBytes = 8 + 4 + 16;

struct HiddenHeader {
  std::array<uint8_t, 32> signature = {};
  HiddenType type = HiddenType::kFile;
  uint64_t size = 0;
  uint64_t mtime = 0;
  Inode inode;  // only the pointer fields are meaningful here
  std::vector<uint32_t> free_pool;
  // Commit sequence of the durable dual-header protocol (0 on volumes
  // that never mounted durable). The higher valid (primary, anchor) image
  // wins at open.
  uint64_t seq = 0;
  // The image's partner block: in the PRIMARY image, the anchor block
  // this object journals its header through; in the ANCHOR image, the
  // primary header block to restore. 0 = no anchor (non-durable object).
  uint32_t partner = 0;
  // Redundancy policy + first block of the FAK-encrypted stripe-map chain
  // (0 = none). Packed into the 7 former pad bytes after the type, so the
  // layout is unchanged and pre-PR 6 headers (all-zero pad) decode as
  // kNone.
  RedundancyPolicy redundancy;
  uint32_t red_map_block = 0;

  // Serializes into a block-size buffer (then encrypted under the FAK, so
  // the on-disk block stays indistinguishable from noise). The checksum
  // trailer is always written; pool capacity shrinks by the trailer.
  Status EncodeTo(uint8_t* buf, size_t buf_size) const;
  // Rejects torn images: a nonzero checksum must verify (all-zero is
  // accepted as legacy).
  static StatusOr<HiddenHeader> DecodeFrom(const uint8_t* buf, size_t size);
};

}  // namespace stegfs

#endif  // STEGFS_CORE_HIDDEN_HEADER_H_
