// The hidden-object header (paper figure 2). One device block, encrypted
// with the object's File Access Key, holding:
//   - the signature that "uniquely identifies the file"
//     (SHA-256 of physical name || FAK; verified after decrypting a
//     locator candidate),
//   - the object's inode (the "link to an inode table that indexes all the
//     data blocks"),
//   - the internal free-block pool (the "linked list of pointers to free
//     blocks held by the file"; stored inline — equivalent content, single
//     block — see DESIGN.md),
//   - size / mtime / type metadata that a plain file would keep in the
//     central directory.
#ifndef STEGFS_CORE_HIDDEN_HEADER_H_
#define STEGFS_CORE_HIDDEN_HEADER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "fs/inode.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

// Upper bound on pool entries representable in one 512-byte header block.
inline constexpr uint32_t kMaxFreePool = 96;

enum class HiddenType : uint8_t {
  kFile = 1,       // 'f' in the paper's API
  kDirectory = 2,  // 'd'
};

struct HiddenHeader {
  std::array<uint8_t, 32> signature = {};
  HiddenType type = HiddenType::kFile;
  uint64_t size = 0;
  uint64_t mtime = 0;
  Inode inode;  // only the pointer fields are meaningful here
  std::vector<uint32_t> free_pool;

  // Serializes into a block-size buffer; bytes past the structure are filled
  // from `filler` (must look random — the whole block is then encrypted, so
  // zeros would be fine cryptographically, but random filler also keeps the
  // *plaintext* header indistinguishable from noise in memory dumps).
  Status EncodeTo(uint8_t* buf, size_t buf_size) const;
  static StatusOr<HiddenHeader> DecodeFrom(const uint8_t* buf, size_t size);
};

}  // namespace stegfs

#endif  // STEGFS_CORE_HIDDEN_HEADER_H_
