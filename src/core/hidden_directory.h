// Hidden directory content: a serialized table of (name, type, FAK)
// entries. Two uses (paper section 3.2):
//
//   1. UAK directories — per User Access Key, the directory of all hidden
//      objects reachable with that UAK ("StegFS maintains a directory of
//      file name and FAK pairs... encrypted with the UAK and stored as a
//      hidden file").
//   2. User-created hidden directories — steg_create(..., 'd') objects
//      whose entries are their hidden children; connecting the directory
//      reveals all offspring, each with its own FAK.
#ifndef STEGFS_CORE_HIDDEN_DIRECTORY_H_
#define STEGFS_CORE_HIDDEN_DIRECTORY_H_

#include <string>
#include <vector>

#include "core/hidden_object.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

struct HiddenDirEntry {
  std::string name;  // object name as the user knows it
  HiddenType type = HiddenType::kFile;
  std::string fak;  // the object's File Access Key
};

// Content codec.
std::string EncodeHiddenDir(const std::vector<HiddenDirEntry>& entries);
StatusOr<std::vector<HiddenDirEntry>> DecodeHiddenDir(
    const std::string& blob);

// Load/modify/store helpers over an open HiddenObject of directory type.
class HiddenDirView {
 public:
  static StatusOr<std::vector<HiddenDirEntry>> Load(HiddenObject* dir);
  static Status Store(HiddenObject* dir,
                      const std::vector<HiddenDirEntry>& entries);

  // Returns the entry index for `name`, or -1.
  static int Find(const std::vector<HiddenDirEntry>& entries,
                  const std::string& name);
  // Inserts or replaces by name.
  static void Upsert(std::vector<HiddenDirEntry>* entries,
                     HiddenDirEntry entry);
  // Removes by name; returns false if absent.
  static bool Erase(std::vector<HiddenDirEntry>* entries,
                    const std::string& name);
};

}  // namespace stegfs

#endif  // STEGFS_CORE_HIDDEN_DIRECTORY_H_
