// FAK escrow: the paper's workaround for the section 3.4 limitations.
//
// Because hidden files are invisible even to the administrator, the file
// system "is unable to defragment hidden files ... [or] remove hidden files
// belonging to expired user accounts without cooperation from the users who
// possess the file access keys. A solution is to offer users the option of
// depositing a copy of the FAKs with the system administrator."
//
// KeyEscrow implements that deposit box: users append RSA envelopes (each
// holding uid + the object's (name, type, FAK) record, encrypted under the
// ADMINISTRATOR's public key) to a plain escrow file. Only the holder of
// the private key can open them. With the private key the administrator can
//   - enumerate escrowed objects,
//   - purge every escrowed object of an expired account, and
//   - "defragment" an object: rewrite it in place so its blocks are
//     re-placed and its free pool re-drawn (the closest meaningful
//     operation under randomized placement).
//
// Depositing is a deliberate secrecy trade-off: the administrator learns
// that THESE objects exist (not the user's other objects, and no UAK). The
// paper makes the same concession.
#ifndef STEGFS_CORE_ESCROW_H_
#define STEGFS_CORE_ESCROW_H_

#include <string>
#include <vector>

#include "core/stegfs.h"
#include "crypto/rsa.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

struct EscrowRecord {
  std::string uid;
  HiddenDirEntry entry;  // (objname, type, FAK)
};

class KeyEscrow {
 public:
  // `escrow_path` is a plain file on the same volume (created on first
  // deposit). `fs` must outlive the escrow.
  KeyEscrow(StegFs* fs, std::string escrow_path);

  // User side: resolves `objname` through the UAK and appends its record,
  // encrypted under the administrator's public key.
  Status Deposit(const std::string& uid, const std::string& objname,
                 const std::string& uak,
                 const crypto::RsaPublicKey& admin_key,
                 const std::string& entropy);

  // Administrator side (requires the private key).
  StatusOr<std::vector<EscrowRecord>> List(
      const crypto::RsaPrivateKey& admin_key);

  // Deletes every escrowed object belonging to `uid` and drops the records
  // from the escrow file. The user's UAK directory is NOT touched (the
  // administrator has no UAK); a later connect of a purged object reports
  // NotFound. Returns the number of objects removed.
  StatusOr<int> PurgeUser(const crypto::RsaPrivateKey& admin_key,
                          const std::string& uid);

  // Rewrites the object so its data blocks and free pool are freshly
  // placed. (name, FAK) are preserved, so the owner's directory entries
  // stay valid. Directories are rewritten shallowly (their entry table).
  Status Defragment(const crypto::RsaPrivateKey& admin_key,
                    const std::string& uid, const std::string& objname);

 private:
  Status EnsureParents(const std::string& path);
  StatusOr<std::vector<std::string>> LoadEnvelopes();
  Status StoreEnvelopes(const std::vector<std::string>& envelopes);
  StatusOr<EscrowRecord> DecryptRecord(
      const crypto::RsaPrivateKey& admin_key, const std::string& envelope);

  StegFs* fs_;
  std::string escrow_path_;
};

}  // namespace stegfs

#endif  // STEGFS_CORE_ESCROW_H_
