#include "core/backup.h"

#include <algorithm>
#include <functional>

#include "util/coding.h"

namespace stegfs {

namespace {
constexpr uint32_t kBackupMagic = 0x5342414b;  // "SBAK"

// Plain tree entry kinds in the image.
constexpr uint8_t kPlainDir = 1;
constexpr uint8_t kPlainFile = 2;
}  // namespace

StatusOr<std::string> StegBackup(StegFs* fs, BackupStats* stats) {
  PlainFs* plain = fs->plain();
  const Layout& layout = plain->layout();

  // Make the device image current before reading raw blocks.
  STEGFS_RETURN_IF_ERROR(fs->Flush());

  std::vector<uint8_t> referenced;
  STEGFS_RETURN_IF_ERROR(plain->CollectReferencedBlocks(&referenced));

  std::string out;
  PutFixed32(&out, kBackupMagic);
  PutFixed32(&out, layout.block_size);
  PutFixed64(&out, layout.num_blocks);

  // Superblock raw copy (geometry + StegParams + dummy seed).
  std::vector<uint8_t> buf(layout.block_size);
  BufferCache* cache = plain->cache();
  STEGFS_RETURN_IF_ERROR(cache->Read(0, buf.data()));
  out.append(reinterpret_cast<const char*>(buf.data()), buf.size());

  // Image of allocated-but-unreferenced blocks: hidden objects, their free
  // pools, dummies, abandoned blocks.
  uint64_t imaged = 0;
  std::string blocks_section;
  for (uint64_t b = layout.data_start; b < layout.num_blocks; ++b) {
    if (!plain->bitmap()->IsAllocated(b) || referenced[b]) continue;
    STEGFS_RETURN_IF_ERROR(cache->Read(b, buf.data()));
    PutFixed64(&blocks_section, b);
    blocks_section.append(reinterpret_cast<const char*>(buf.data()),
                          buf.size());
    ++imaged;
  }
  PutFixed64(&out, imaged);
  out += blocks_section;

  // Plain tree, depth-first so parents precede children.
  uint64_t files = 0, dirs = 0;
  std::string plain_section;
  uint32_t plain_count = 0;
  std::function<Status(const std::string&)> walk =
      [&](const std::string& path) -> Status {
    STEGFS_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, plain->List(path));
    for (const DirEntry& e : entries) {
      std::string child = path == "/" ? "/" + e.name : path + "/" + e.name;
      STEGFS_ASSIGN_OR_RETURN(FileInfo info, plain->Stat(child));
      if (info.type == InodeType::kDirectory) {
        plain_section.push_back(static_cast<char>(kPlainDir));
        PutLengthPrefixed(&plain_section, child);
        PutLengthPrefixed(&plain_section, "");
        ++plain_count;
        ++dirs;
        STEGFS_RETURN_IF_ERROR(walk(child));
      } else {
        STEGFS_ASSIGN_OR_RETURN(std::string content, plain->ReadFile(child));
        plain_section.push_back(static_cast<char>(kPlainFile));
        PutLengthPrefixed(&plain_section, child);
        PutLengthPrefixed(&plain_section, content);
        ++plain_count;
        ++files;
      }
    }
    return Status::OK();
  };
  STEGFS_RETURN_IF_ERROR(walk("/"));
  PutFixed32(&out, plain_count);
  out += plain_section;

  if (stats != nullptr) {
    stats->imaged_blocks = imaged;
    stats->plain_files = files;
    stats->plain_dirs = dirs;
    stats->image_bytes = out.size();
  }
  return out;
}

Status StegRecover(BlockDevice* device, const std::string& image) {
  Decoder dec(image);
  uint32_t magic, block_size;
  uint64_t num_blocks;
  if (!dec.GetFixed32(&magic) || magic != kBackupMagic) {
    return Status::Corruption("not a StegFS backup image");
  }
  if (!dec.GetFixed32(&block_size) || !dec.GetFixed64(&num_blocks)) {
    return Status::Corruption("backup image truncated (geometry)");
  }
  if (device->block_size() != block_size ||
      device->num_blocks() < num_blocks) {
    return Status::InvalidArgument(
        "target device geometry does not fit the backup image");
  }

  // 1. Superblock back at block 0.
  std::vector<uint8_t> buf(block_size);
  if (!dec.GetBytes(buf.data(), block_size)) {
    return Status::Corruption("backup image truncated (superblock)");
  }
  STEGFS_ASSIGN_OR_RETURN(Superblock sb,
                          Superblock::DecodeFrom(buf.data(), buf.size()));
  Layout layout = sb.ComputeLayout();
  STEGFS_RETURN_IF_ERROR(device->WriteBlock(0, buf.data()));

  // 2. Refill every data block with fresh noise so blocks that used to hold
  //    plain files (now restored elsewhere) don't leak stale plaintext, and
  //    free space remains indistinguishable from hidden data.
  {
    Xoshiro fill(0x5245434f56455259ULL);  // recovery fill seed
    for (uint64_t b = layout.data_start; b < num_blocks; ++b) {
      fill.FillBytes(buf.data(), buf.size());
      STEGFS_RETURN_IF_ERROR(device->WriteBlock(b, buf.data()));
    }
  }

  // 3. Hidden/abandoned blocks restored to their ORIGINAL addresses, marked
  //    in a fresh bitmap.
  BufferCache cache(device, 1024, WritePolicy::kWriteBack);
  BlockBitmap bitmap(layout);
  // The restored superblock carries the original journal region; mark it
  // before anything else allocates, or restored plain files could land in
  // the ring — which the next mount's recovery scrub would then destroy.
  for (uint32_t j = 0; j < sb.journal_blocks; ++j) {
    STEGFS_RETURN_IF_ERROR(bitmap.Allocate(sb.journal_start + j));
  }
  uint64_t imaged;
  if (!dec.GetFixed64(&imaged)) {
    return Status::Corruption("backup image truncated (block count)");
  }
  for (uint64_t i = 0; i < imaged; ++i) {
    uint64_t blockno;
    if (!dec.GetFixed64(&blockno) || !dec.GetBytes(buf.data(), block_size)) {
      return Status::Corruption("backup image truncated (hidden block)");
    }
    if (blockno < layout.data_start || blockno >= num_blocks) {
      return Status::Corruption("hidden block address out of range");
    }
    STEGFS_RETURN_IF_ERROR(device->WriteBlock(blockno, buf.data()));
    STEGFS_RETURN_IF_ERROR(bitmap.Allocate(blockno));
  }

  // 4. Fresh central directory with a root inode, persisted with the
  //    restored bitmap.
  InodeTable inodes(&cache, layout);
  inodes.InitEmpty();
  auto root = inodes.Allocate(InodeType::kDirectory);
  if (!root.ok()) return root.status();
  STEGFS_RETURN_IF_ERROR(bitmap.Store(&cache));
  STEGFS_RETURN_IF_ERROR(inodes.PersistAll());
  STEGFS_RETURN_IF_ERROR(cache.Flush());

  // 5. Plain files recreated through normal allocation ("possibly at new
  //    addresses" — the bitmap steers them around restored hidden blocks).
  MountOptions mo;
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<PlainFs> plain,
                          PlainFs::Mount(device, mo));
  uint32_t plain_count;
  if (!dec.GetFixed32(&plain_count)) {
    return Status::Corruption("backup image truncated (plain count)");
  }
  for (uint32_t i = 0; i < plain_count; ++i) {
    uint8_t kind;
    std::string path, content;
    if (!dec.GetBytes(&kind, 1) || !dec.GetLengthPrefixed(&path) ||
        !dec.GetLengthPrefixed(&content)) {
      return Status::Corruption("backup image truncated (plain entry)");
    }
    if (kind == kPlainDir) {
      STEGFS_RETURN_IF_ERROR(plain->MkDir(path));
    } else if (kind == kPlainFile) {
      STEGFS_RETURN_IF_ERROR(plain->WriteFile(path, content));
    } else {
      return Status::Corruption("unknown plain entry kind");
    }
  }
  return plain->Flush();
}

}  // namespace stegfs
