// The keyed header locator (paper sections 3.1 and 4).
//
// Creation: hash(name || key) seeds a recursive-SHA-256 generator of data-
// region block numbers; the first candidate that is FREE in the bitmap
// becomes the header block.
//
// Retrieval: the same candidate sequence is probed; for each candidate that
// is ALLOCATED in the bitmap, the block is read, decrypted with the key, and
// its signature compared against SHA-256(name || key). Free candidates are
// skipped (they were occupied at creation time, or have been freed since —
// either way the header cannot be there now... unless it was freed, which
// means the object was deleted). A probe limit bounds the cost of looking
// up objects that do not exist; with the volume never 100% full, the real
// header is found long before the limit.
#ifndef STEGFS_CORE_LOCATOR_H_
#define STEGFS_CORE_LOCATOR_H_

#include <cstdint>
#include <string>

#include "cache/buffer_cache.h"
#include "crypto/block_crypter.h"
#include "crypto/prng.h"
#include "fs/bitmap.h"
#include "fs/layout.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

// Deterministic candidate sequence for (physical_name, access_key).
class CandidateSequence {
 public:
  CandidateSequence(const std::string& physical_name,
                    const std::string& access_key, const Layout& layout);

  // Next candidate block number, always within the data region.
  uint64_t Next();

 private:
  crypto::HashChainPrng prng_;
  uint64_t data_start_;
};

struct LocateResult {
  uint64_t header_block = 0;
  uint32_t probes = 0;  // candidates examined (for the A3 ablation)
};

class HeaderLocator {
 public:
  HeaderLocator(BufferCache* cache, BlockBitmap* bitmap, const Layout& layout,
                uint32_t probe_limit)
      : cache_(cache),
        bitmap_(bitmap),
        layout_(layout),
        probe_limit_(probe_limit) {}

  // Finds a free block for a new header (first free candidate) and marks it
  // allocated in the bitmap.
  StatusOr<LocateResult> ClaimHeaderBlock(const std::string& physical_name,
                                          const std::string& access_key);

  // Finds an existing header by signature match. `crypter` must be keyed by
  // the same access key. NotFound after probe_limit candidates.
  StatusOr<LocateResult> FindHeader(const std::string& physical_name,
                                    const std::string& access_key,
                                    const crypto::BlockCrypter& crypter);

 private:
  BufferCache* cache_;
  BlockBitmap* bitmap_;
  Layout layout_;
  uint32_t probe_limit_;
};

}  // namespace stegfs

#endif  // STEGFS_CORE_LOCATOR_H_
