#include "core/hidden_object.h"

#include <algorithm>
#include <cassert>

#include "crypto/keys.h"

namespace stegfs {

namespace {

// Locks the volume's allocation mutex when one is configured; a no-op
// (empty) lock otherwise, so direct single-threaded users pay nothing.
std::unique_lock<std::mutex> LockAlloc(std::mutex* mu) {
  return mu != nullptr ? std::unique_lock<std::mutex>(*mu)
                       : std::unique_lock<std::mutex>();
}

}  // namespace

HiddenObject::HiddenObject(const HiddenVolume& vol,
                           const std::string& physical_name,
                           const std::string& access_key)
    : vol_(vol),
      physical_name_(physical_name),
      access_key_(access_key),
      crypter_(access_key),
      store_(vol.cache, &crypter_),
      io_(vol.layout.block_size),
      allocator_(this) {
  io_.set_readahead(vol.readahead);
}

uint32_t HiddenObject::EffectivePoolMax() const {
  return std::min(vol_.params.free_pool_max, kMaxFreePool);
}

StatusOr<std::unique_ptr<HiddenObject>> HiddenObject::Create(
    const HiddenVolume& vol, const std::string& physical_name,
    const std::string& access_key, HiddenType type) {
  std::unique_ptr<HiddenObject> obj(
      new HiddenObject(vol, physical_name, access_key));

  // Refuse to create a second object under the same (name, key): its header
  // would shadow or be shadowed by the existing one.
  HeaderLocator locator(vol.cache, vol.bitmap, vol.layout, vol.probe_limit);
  auto existing = locator.FindHeader(physical_name, access_key,
                                     obj->crypter_);
  if (existing.ok()) {
    return Status::AlreadyExists("hidden object already exists: " +
                                 physical_name);
  }
  if (!existing.status().IsNotFound()) return existing.status();

  STEGFS_ASSIGN_OR_RETURN(LocateResult claim,
                          locator.ClaimHeaderBlock(physical_name, access_key));
  obj->header_block_ = claim.header_block;
  obj->last_probes_ = claim.probes;

  obj->header_.signature = crypto::FileSignature(physical_name, access_key);
  obj->header_.type = type;
  obj->header_.inode.type =
      type == HiddenType::kDirectory ? InodeType::kDirectory
                                     : InodeType::kFile;
  obj->header_dirty_ = true;

  // Allocate the initial pool "straightaway" (paper 3.1).
  STEGFS_RETURN_IF_ERROR(obj->TopUpPool());
  STEGFS_RETURN_IF_ERROR(obj->Sync());
  return obj;
}

StatusOr<std::unique_ptr<HiddenObject>> HiddenObject::Open(
    const HiddenVolume& vol, const std::string& physical_name,
    const std::string& access_key) {
  std::unique_ptr<HiddenObject> obj(
      new HiddenObject(vol, physical_name, access_key));
  HeaderLocator locator(vol.cache, vol.bitmap, vol.layout, vol.probe_limit);
  STEGFS_ASSIGN_OR_RETURN(
      LocateResult found,
      locator.FindHeader(physical_name, access_key, obj->crypter_));
  obj->header_block_ = found.header_block;
  obj->last_probes_ = found.probes;

  std::vector<uint8_t> buf(vol.layout.block_size);
  STEGFS_RETURN_IF_ERROR(
      obj->store_.ReadBlock(found.header_block, buf.data()));
  STEGFS_ASSIGN_OR_RETURN(obj->header_,
                          HiddenHeader::DecodeFrom(buf.data(), buf.size()));
  obj->header_.inode.size = obj->header_.size;
  return obj;
}

HiddenObject::~HiddenObject() {
  if (!removed_) (void)Sync();
}

Status HiddenObject::TopUpPool() {
  auto alloc = LockAlloc(vol_.alloc_mu);
  return TopUpPoolLocked();
}

Status HiddenObject::TopUpPoolLocked() {
  const uint32_t target = EffectivePoolMax();
  while (header_.free_pool.size() < target) {
    STEGFS_ASSIGN_OR_RETURN(
        uint64_t b,
        vol_.bitmap->AllocateByPolicy(AllocPolicy::kRandom, vol_.rng));
    header_.free_pool.push_back(static_cast<uint32_t>(b));
    unscrubbed_.insert(static_cast<uint32_t>(b));
    header_dirty_ = true;
  }
  return Status::OK();
}

Status HiddenObject::ReleaseExcess() {
  auto alloc = LockAlloc(vol_.alloc_mu);
  return ReleaseExcessLocked();
}

Status HiddenObject::ReleaseExcessLocked() {
  const uint32_t target = EffectivePoolMax();
  while (header_.free_pool.size() > target) {
    size_t idx = vol_.rng->Uniform(header_.free_pool.size());
    uint64_t b = header_.free_pool[idx];
    header_.free_pool[idx] = header_.free_pool.back();
    header_.free_pool.pop_back();
    // The block leaves our custody: it must NOT be scrubbed later — by the
    // time Sync runs it may belong to someone else (e.g. a plain file).
    unscrubbed_.erase(static_cast<uint32_t>(b));
    STEGFS_RETURN_IF_ERROR(vol_.bitmap->Free(b));
    header_dirty_ = true;
  }
  return Status::OK();
}

StatusOr<uint64_t> HiddenObject::PoolAllocator::AllocateBlock() {
  HiddenObject* obj = obj_;
  auto alloc = LockAlloc(obj->vol_.alloc_mu);
  if (obj->EffectivePoolMax() == 0) {
    // Pool disabled: degrade to direct random allocation.
    return obj->vol_.bitmap->AllocateByPolicy(AllocPolicy::kRandom,
                                              obj->vol_.rng);
  }
  if (obj->header_.free_pool.empty()) {
    STEGFS_RETURN_IF_ERROR(obj->TopUpPoolLocked());
    if (obj->header_.free_pool.empty()) {
      return Status::NoSpace("volume full (hidden pool refill failed)");
    }
  }
  // "Blocks are taken off the linked list randomly" (paper 3.1).
  size_t idx = obj->vol_.rng->Uniform(obj->header_.free_pool.size());
  uint64_t b = obj->header_.free_pool[idx];
  obj->header_.free_pool[idx] = obj->header_.free_pool.back();
  obj->header_.free_pool.pop_back();
  // The caller is about to write the block: no scrub needed.
  obj->unscrubbed_.erase(static_cast<uint32_t>(b));
  obj->header_dirty_ = true;
  // Top up when the pool drains below the lower bound.
  if (obj->header_.free_pool.size() < obj->vol_.params.free_pool_min) {
    STEGFS_RETURN_IF_ERROR(obj->TopUpPoolLocked());
  }
  return b;
}

Status HiddenObject::PoolAllocator::FreeBlock(uint64_t block) {
  HiddenObject* obj = obj_;
  auto alloc = LockAlloc(obj->vol_.alloc_mu);
  obj->header_.free_pool.push_back(static_cast<uint32_t>(block));
  obj->header_dirty_ = true;
  return obj->ReleaseExcessLocked();
}

Status HiddenObject::Read(uint64_t offset, uint64_t n, std::string* out) {
  if (removed_) return Status::FailedPrecondition("object was removed");
  return io_.Read(header_.inode, offset, n, &store_, out);
}

StatusOr<std::string> HiddenObject::ReadAll() {
  std::string out;
  STEGFS_RETURN_IF_ERROR(Read(0, size(), &out));
  return out;
}

Status HiddenObject::Write(uint64_t offset, std::string_view data) {
  if (removed_) return Status::FailedPrecondition("object was removed");
  bool dirty = false;
  STEGFS_RETURN_IF_ERROR(
      io_.Write(&header_.inode, offset, data, &store_, &allocator_, &dirty));
  if (dirty) header_dirty_ = true;
  return Status::OK();
}

Status HiddenObject::WriteAll(std::string_view data) {
  STEGFS_RETURN_IF_ERROR(Truncate(0));
  return Write(0, data);
}

Status HiddenObject::Truncate(uint64_t new_size) {
  if (removed_) return Status::FailedPrecondition("object was removed");
  bool dirty = false;
  STEGFS_RETURN_IF_ERROR(io_.Truncate(&header_.inode, new_size, &store_,
                                      &allocator_, &dirty));
  if (dirty) header_dirty_ = true;
  return Status::OK();
}

Status HiddenObject::Sync() {
  if (removed_) return Status::FailedPrecondition("object was removed");
  // Scrub pool blocks that still hold pre-acquisition content, so nothing
  // inside this object's footprint is distinguishable from noise. The
  // shared rng draw needs the allocation lock; the cache writes nest below
  // it in the lock order.
  if (!unscrubbed_.empty()) {
    auto alloc = LockAlloc(vol_.alloc_mu);
    // One batched write for all scrub blocks (ascending set order keeps
    // the rng draw sequence identical to the historical per-block loop).
    const size_t bs = vol_.layout.block_size;
    std::vector<uint64_t> blocks(unscrubbed_.begin(), unscrubbed_.end());
    std::vector<uint8_t> noise(blocks.size() * bs);
    for (size_t i = 0; i < blocks.size(); ++i) {
      vol_.rng->FillBytes(noise.data() + i * bs, bs);
    }
    STEGFS_RETURN_IF_ERROR(
        vol_.cache->WriteBatch(blocks.data(), blocks.size(), noise.data()));
    unscrubbed_.clear();
  }
  if (!header_dirty_) return Status::OK();
  header_.size = header_.inode.size;
  header_.mtime = header_.inode.mtime;
  std::vector<uint8_t> buf(vol_.layout.block_size);
  STEGFS_RETURN_IF_ERROR(header_.EncodeTo(buf.data(), buf.size()));
  STEGFS_RETURN_IF_ERROR(store_.WriteBlock(header_block_, buf.data()));
  header_dirty_ = false;
  return Status::OK();
}

Status HiddenObject::Remove() {
  if (removed_) return Status::FailedPrecondition("object already removed");
  // Free data + indirect blocks into the pool, then drain the entire pool
  // back to the file system. FreeFrom drives the allocator, which takes the
  // allocation lock per call — so it must not be held here yet.
  STEGFS_RETURN_IF_ERROR(
      io_.mapper()->FreeFrom(&header_.inode, 0, &store_, &allocator_));
  auto alloc = LockAlloc(vol_.alloc_mu);
  for (uint32_t b : header_.free_pool) {
    STEGFS_RETURN_IF_ERROR(vol_.bitmap->Free(b));
  }
  header_.free_pool.clear();
  unscrubbed_.clear();  // released blocks are no longer ours to scrub
  // Obliterate the header so the signature can never be located again, then
  // release its block.
  std::vector<uint8_t> noise(vol_.layout.block_size);
  vol_.rng->FillBytes(noise.data(), noise.size());
  STEGFS_RETURN_IF_ERROR(vol_.cache->Write(header_block_, noise.data()));
  STEGFS_RETURN_IF_ERROR(vol_.bitmap->Free(header_block_));
  removed_ = true;
  return Status::OK();
}

}  // namespace stegfs
