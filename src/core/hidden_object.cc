#include "core/hidden_object.h"

#include <algorithm>
#include <cassert>

#include "crypto/keys.h"

namespace stegfs {

namespace {

// Locks the volume's allocation mutex when one is configured; a no-op
// (empty) lock otherwise, so direct single-threaded users pay nothing.
std::unique_lock<std::mutex> LockAlloc(std::mutex* mu) {
  return mu != nullptr ? std::unique_lock<std::mutex>(*mu)
                       : std::unique_lock<std::mutex>();
}

}  // namespace

HiddenObject::HiddenObject(const HiddenVolume& vol,
                           const std::string& physical_name,
                           const std::string& access_key)
    : vol_(vol),
      physical_name_(physical_name),
      access_key_(access_key),
      crypter_(access_key),
      store_(vol.cache, &crypter_),
      io_(vol.layout.block_size),
      allocator_(this) {
  io_.set_readahead(vol.readahead);
}

uint32_t HiddenObject::EffectivePoolMax() const {
  return std::min(vol_.params.free_pool_max, kMaxFreePool);
}

std::string HiddenObject::AnchorName(const std::string& physical_name) {
  return physical_name + '\x01' + "hdr-anchor";
}

Status HiddenObject::CommitBarrier() {
  // The write-barrier contract: an engine's in-flight writes are not
  // "completed" until Drain returns, and Sync() only orders completed
  // writes. Both engines implement Drain; the sync mount has none.
  // WriteBackDirty (not Flush) so the barrier costs exactly ONE device
  // sync. When the volume has a barrier coalescer, arrive there instead:
  // it runs the same drain/write-back/sync sequence, shared with every
  // concurrent barrier (other hidden commits, journal batch commits).
  if (vol_.barrier != nullptr) return vol_.barrier->Arrive();
  if (vol_.engine != nullptr) vol_.engine->Drain();
  STEGFS_RETURN_IF_ERROR(vol_.cache->WriteBackDirty());
  return vol_.device->Sync();
}

Status HiddenObject::WriteHeaderImage(uint64_t at_block,
                                      const std::array<uint8_t, 32>& sig,
                                      uint32_t partner) {
  HiddenHeader image = header_;
  image.signature = sig;
  image.partner = partner;
  std::vector<uint8_t> buf(vol_.layout.block_size);
  STEGFS_RETURN_IF_ERROR(image.EncodeTo(buf.data(), buf.size()));
  return store_.WriteBlock(at_block, buf.data());
}

void HiddenObject::AttachRedundancy() {
  redundancy_ = std::make_unique<RedundancyManager>(
      header_.redundancy, vol_.layout.block_size, vol_.bitmap, vol_.red_stats);
  io_.set_redundancy(redundancy_.get());
}

StatusOr<std::unique_ptr<HiddenObject>> HiddenObject::Create(
    const HiddenVolume& vol, const std::string& physical_name,
    const std::string& access_key, HiddenType type,
    RedundancyPolicy redundancy) {
  if (redundancy.enabled() && !redundancy.Valid()) {
    return Status::InvalidArgument("invalid redundancy policy");
  }
  std::unique_ptr<HiddenObject> obj(
      new HiddenObject(vol, physical_name, access_key));

  // Refuse to create a second object under the same (name, key): its header
  // would shadow or be shadowed by the existing one.
  HeaderLocator locator(vol.cache, vol.bitmap, vol.layout, vol.probe_limit);
  auto existing = locator.FindHeader(physical_name, access_key,
                                     obj->crypter_);
  if (existing.ok()) {
    return Status::AlreadyExists("hidden object already exists: " +
                                 physical_name);
  }
  if (!existing.status().IsNotFound()) return existing.status();
  if (vol.durable) {
    // A crash can tear the primary while the anchor chain survives; a
    // create that only probed the primary would then shadow it.
    auto anchored = locator.FindHeader(AnchorName(physical_name), access_key,
                                       obj->crypter_);
    if (anchored.ok()) {
      return Status::AlreadyExists("hidden object already exists: " +
                                   physical_name);
    }
    if (!anchored.status().IsNotFound()) return anchored.status();
  }

  STEGFS_ASSIGN_OR_RETURN(LocateResult claim,
                          locator.ClaimHeaderBlock(physical_name, access_key));
  obj->header_block_ = claim.header_block;
  obj->last_probes_ = claim.probes;
  if (vol.durable) {
    STEGFS_ASSIGN_OR_RETURN(
        LocateResult anchor,
        locator.ClaimHeaderBlock(AnchorName(physical_name), access_key));
    obj->anchor_block_ = anchor.header_block;
    obj->header_.partner = static_cast<uint32_t>(anchor.header_block);
  }

  obj->header_.signature = crypto::FileSignature(physical_name, access_key);
  obj->header_.type = type;
  obj->header_.inode.type =
      type == HiddenType::kDirectory ? InodeType::kDirectory
                                     : InodeType::kFile;
  obj->header_dirty_ = true;
  if (redundancy.enabled()) {
    obj->header_.redundancy = redundancy;
    obj->AttachRedundancy();
  }

  // Allocate the initial pool "straightaway" (paper 3.1).
  STEGFS_RETURN_IF_ERROR(obj->TopUpPool());
  STEGFS_RETURN_IF_ERROR(obj->Sync());
  return obj;
}

StatusOr<std::unique_ptr<HiddenObject>> HiddenObject::Open(
    const HiddenVolume& vol, const std::string& physical_name,
    const std::string& access_key) {
  std::unique_ptr<HiddenObject> obj(
      new HiddenObject(vol, physical_name, access_key));
  HeaderLocator locator(vol.cache, vol.bitmap, vol.layout, vol.probe_limit);
  auto found = locator.FindHeader(physical_name, access_key, obj->crypter_);
  Status primary_status = found.status();
  bool have_primary = false;
  if (found.ok()) {
    obj->header_block_ = found->header_block;
    obj->last_probes_ = found->probes;
    std::vector<uint8_t> buf(vol.layout.block_size);
    STEGFS_RETURN_IF_ERROR(
        obj->store_.ReadBlock(found->header_block, buf.data()));
    auto decoded = HiddenHeader::DecodeFrom(buf.data(), buf.size());
    if (decoded.ok()) {
      obj->header_ = std::move(decoded).value();
      have_primary = true;
    } else if (!vol.durable) {
      return decoded.status();
    } else {
      primary_status = decoded.status();  // torn: try the anchor below
    }
  } else if (!found.status().IsNotFound()) {
    return found.status();
  }

  if (vol.durable) {
    const auto anchor_sig =
        crypto::FileSignature(AnchorName(physical_name), access_key);
    if (have_primary && obj->header_.partner != 0) {
      // Fast path: the primary names its anchor. If the anchor carries a
      // NEWER committed image, the crash hit between the anchor barrier
      // (the commit point) and the primary rewrite — adopt it and heal
      // the primary in place.
      obj->anchor_block_ = obj->header_.partner;
      std::vector<uint8_t> abuf(vol.layout.block_size);
      if (obj->store_.ReadBlock(obj->anchor_block_, abuf.data()).ok()) {
        auto adec = HiddenHeader::DecodeFrom(abuf.data(), abuf.size());
        if (adec.ok() && adec->signature == anchor_sig &&
            adec->seq > obj->header_.seq) {
          obj->header_ = std::move(adec).value();
          obj->header_.signature =
              crypto::FileSignature(physical_name, access_key);
          obj->header_.partner = static_cast<uint32_t>(obj->anchor_block_);
          STEGFS_RETURN_IF_ERROR(obj->WriteHeaderImage(
              obj->header_block_, obj->header_.signature,
              obj->header_.partner));
        }
      }
    } else if (!have_primary) {
      // Primary torn or unlocatable: walk the salted anchor sequence.
      auto afound = locator.FindHeader(AnchorName(physical_name), access_key,
                                       obj->crypter_);
      if (!afound.ok()) {
        // No anchor either: the object genuinely does not exist (or
        // predates durability and is really corrupt).
        return afound.status().IsNotFound() ? primary_status
                                            : afound.status();
      }
      obj->anchor_block_ = afound->header_block;
      obj->last_probes_ = afound->probes;
      std::vector<uint8_t> abuf(vol.layout.block_size);
      STEGFS_RETURN_IF_ERROR(
          obj->store_.ReadBlock(obj->anchor_block_, abuf.data()));
      STEGFS_ASSIGN_OR_RETURN(
          HiddenHeader aimg, HiddenHeader::DecodeFrom(abuf.data(),
                                                      abuf.size()));
      if (aimg.partner == 0) {
        return Status::Corruption("anchor image names no primary block");
      }
      obj->header_ = std::move(aimg);
      obj->header_block_ = obj->header_.partner;
      obj->header_.signature =
          crypto::FileSignature(physical_name, access_key);
      obj->header_.partner = static_cast<uint32_t>(obj->anchor_block_);
      STEGFS_RETURN_IF_ERROR(obj->WriteHeaderImage(
          obj->header_block_, obj->header_.signature, obj->header_.partner));
      have_primary = true;
    } else {
      obj->anchor_block_ = obj->header_.partner;  // may be 0 (pre-durable)
    }
  } else if (!have_primary) {
    return primary_status;
  }

  obj->header_.inode.size = obj->header_.size;
  if (obj->header_.redundancy.enabled()) {
    obj->AttachRedundancy();
    // A corrupt/torn map chain degrades to "no coverage" inside Load (the
    // code is systematic, data is intact); the next Sync persists a fresh
    // chain and the next scrub rebuilds the checksums.
    STEGFS_RETURN_IF_ERROR(
        obj->redundancy_->Load(obj->header_.red_map_block, &obj->store_));
  }
  return obj;
}

HiddenObject::~HiddenObject() {
  if (!removed_) (void)Sync();
}

Status HiddenObject::TopUpPool() {
  auto alloc = LockAlloc(vol_.alloc_mu);
  return TopUpPoolLocked();
}

Status HiddenObject::TopUpPoolLocked() {
  const uint32_t target = EffectivePoolMax();
  while (header_.free_pool.size() < target) {
    STEGFS_ASSIGN_OR_RETURN(
        uint64_t b,
        vol_.bitmap->AllocateByPolicy(AllocPolicy::kRandom, vol_.rng));
    header_.free_pool.push_back(static_cast<uint32_t>(b));
    unscrubbed_.insert(static_cast<uint32_t>(b));
    header_dirty_ = true;
  }
  return Status::OK();
}

Status HiddenObject::ReleaseExcess() {
  auto alloc = LockAlloc(vol_.alloc_mu);
  return ReleaseExcessLocked();
}

Status HiddenObject::ReleaseExcessLocked() {
  const uint32_t target = EffectivePoolMax();
  while (header_.free_pool.size() > target) {
    size_t idx = vol_.rng->Uniform(header_.free_pool.size());
    uint64_t b = header_.free_pool[idx];
    header_.free_pool[idx] = header_.free_pool.back();
    header_.free_pool.pop_back();
    // The block leaves our custody: it must NOT be scrubbed later — by the
    // time Sync runs it may belong to someone else (e.g. a plain file).
    unscrubbed_.erase(static_cast<uint32_t>(b));
    if (vol_.durable) {
      // The committed on-disk pool must stay a subset of the bitmap's
      // allocated set: stage the release, clear the bit only after the
      // pool-shrinking header image has committed (Sync does it).
      pending_bitmap_frees_.push_back(static_cast<uint32_t>(b));
    } else {
      STEGFS_RETURN_IF_ERROR(vol_.bitmap->Free(b));
    }
    header_dirty_ = true;
  }
  return Status::OK();
}

StatusOr<uint64_t> HiddenObject::PoolAllocator::AllocateBlock() {
  HiddenObject* obj = obj_;
  auto alloc = LockAlloc(obj->vol_.alloc_mu);
  if (obj->EffectivePoolMax() == 0) {
    // Pool disabled: degrade to direct random allocation.
    return obj->vol_.bitmap->AllocateByPolicy(AllocPolicy::kRandom,
                                              obj->vol_.rng);
  }
  if (obj->header_.free_pool.empty()) {
    STEGFS_RETURN_IF_ERROR(obj->TopUpPoolLocked());
    if (obj->header_.free_pool.empty()) {
      return Status::NoSpace("volume full (hidden pool refill failed)");
    }
  }
  // "Blocks are taken off the linked list randomly" (paper 3.1).
  size_t idx = obj->vol_.rng->Uniform(obj->header_.free_pool.size());
  uint64_t b = obj->header_.free_pool[idx];
  obj->header_.free_pool[idx] = obj->header_.free_pool.back();
  obj->header_.free_pool.pop_back();
  // The caller is about to write the block: no scrub needed.
  obj->unscrubbed_.erase(static_cast<uint32_t>(b));
  obj->header_dirty_ = true;
  // Top up when the pool drains below the lower bound.
  if (obj->header_.free_pool.size() < obj->vol_.params.free_pool_min) {
    STEGFS_RETURN_IF_ERROR(obj->TopUpPoolLocked());
  }
  return b;
}

Status HiddenObject::PoolAllocator::FreeBlock(uint64_t block) {
  HiddenObject* obj = obj_;
  auto alloc = LockAlloc(obj->vol_.alloc_mu);
  if (obj->vol_.durable) {
    // A freed data block may still be referenced by the committed on-disk
    // header; letting it back into the pool now would allow this same
    // uncommitted operation to reallocate and overwrite it in place. It
    // re-enters the pool at the next Sync (the commit point).
    obj->deferred_returns_.push_back(static_cast<uint32_t>(block));
    obj->header_dirty_ = true;
    return Status::OK();
  }
  obj->header_.free_pool.push_back(static_cast<uint32_t>(block));
  obj->header_dirty_ = true;
  return obj->ReleaseExcessLocked();
}

Status HiddenObject::Read(uint64_t offset, uint64_t n, std::string* out) {
  if (removed_) return Status::FailedPrecondition("object was removed");
  if (redundancy_ == nullptr) {
    return io_.Read(header_.inode, offset, n, &store_, out);
  }
  // Redundant object: verify shares against the stripe map and heal lost
  // ones inline (a heal remaps inode pointers, hence the dirty plumbing).
  bool dirty = false;
  Status s = io_.ReadVerified(&header_.inode, offset, n, &store_, &allocator_,
                              &dirty, out);
  if (dirty || redundancy_->dirty()) header_dirty_ = true;
  return s;
}

StatusOr<std::string> HiddenObject::ReadAll() {
  std::string out;
  STEGFS_RETURN_IF_ERROR(Read(0, size(), &out));
  return out;
}

Status HiddenObject::Write(uint64_t offset, std::string_view data) {
  if (removed_) return Status::FailedPrecondition("object was removed");
  bool dirty = false;
  STEGFS_RETURN_IF_ERROR(
      io_.Write(&header_.inode, offset, data, &store_, &allocator_, &dirty));
  if (dirty) header_dirty_ = true;
  return Status::OK();
}

Status HiddenObject::WriteAll(std::string_view data) {
  STEGFS_RETURN_IF_ERROR(Truncate(0));
  return Write(0, data);
}

Status HiddenObject::Truncate(uint64_t new_size) {
  if (removed_) return Status::FailedPrecondition("object was removed");
  bool dirty = false;
  STEGFS_RETURN_IF_ERROR(io_.Truncate(&header_.inode, new_size, &store_,
                                      &allocator_, &dirty));
  if (dirty) header_dirty_ = true;
  return Status::OK();
}

Status HiddenObject::Sync() {
  if (removed_) return Status::FailedPrecondition("object was removed");
  if (vol_.durable) {
    // Step 0: blocks freed since the last commit re-enter the pool (the
    // image about to commit carries them), and any resulting excess is
    // staged toward the bitmap.
    if (!deferred_returns_.empty()) {
      auto alloc = LockAlloc(vol_.alloc_mu);
      for (uint32_t b : deferred_returns_) header_.free_pool.push_back(b);
      deferred_returns_.clear();
      header_dirty_ = true;
      STEGFS_RETURN_IF_ERROR(ReleaseExcessLocked());
    }
  }
  // Scrub pool blocks that still hold pre-acquisition content, so nothing
  // inside this object's footprint is distinguishable from noise. The
  // shared rng draw needs the allocation lock; the cache writes nest below
  // it in the lock order.
  if (!unscrubbed_.empty()) {
    auto alloc = LockAlloc(vol_.alloc_mu);
    // One batched write for all scrub blocks (ascending set order keeps
    // the rng draw sequence identical to the historical per-block loop).
    const size_t bs = vol_.layout.block_size;
    std::vector<uint64_t> blocks(unscrubbed_.begin(), unscrubbed_.end());
    std::vector<uint8_t> noise(blocks.size() * bs);
    for (size_t i = 0; i < blocks.size(); ++i) {
      vol_.rng->FillBytes(noise.data() + i * bs, bs);
    }
    STEGFS_RETURN_IF_ERROR(
        vol_.cache->WriteBatch(blocks.data(), blocks.size(), noise.data()));
    unscrubbed_.clear();
  }
  // The stripe map persists as a fresh FAK-encrypted chain BEFORE the
  // header that references it (on durable volumes the step-1 barrier then
  // covers both; the old chain's blocks re-enter the pool through the
  // allocator, deferred past the commit like any freed data block).
  if (redundancy_ != nullptr && redundancy_->dirty()) {
    STEGFS_ASSIGN_OR_RETURN(uint32_t map_head,
                            redundancy_->Persist(&store_, &allocator_));
    header_.red_map_block = map_head;
    header_dirty_ = true;
  }
  if (!header_dirty_ && pending_bitmap_frees_.empty()) return Status::OK();
  header_.size = header_.inode.size;
  header_.mtime = header_.inode.mtime;

  if (!vol_.durable) {
    std::vector<uint8_t> buf(vol_.layout.block_size);
    STEGFS_RETURN_IF_ERROR(header_.EncodeTo(buf.data(), buf.size()));
    STEGFS_RETURN_IF_ERROR(store_.WriteBlock(header_block_, buf.data()));
    header_dirty_ = false;
    return Status::OK();
  }

  // Dual-header commit (see the declaration comment for the protocol).
  if (anchor_block_ == 0) {
    // Object predates durability on this volume: claim its anchor now.
    HeaderLocator locator(vol_.cache, vol_.bitmap, vol_.layout,
                          vol_.probe_limit);
    STEGFS_ASSIGN_OR_RETURN(
        LocateResult anchor,
        locator.ClaimHeaderBlock(AnchorName(physical_name_), access_key_));
    anchor_block_ = anchor.header_block;
  }
  header_.partner = static_cast<uint32_t>(anchor_block_);
  header_.seq += 1;

  // 1. Everything the new header references — data, scrub noise, the
  //    bitmap bits backing pool/data claims — becomes durable first.
  STEGFS_RETURN_IF_ERROR(vol_.bitmap->Store(vol_.cache));
  STEGFS_RETURN_IF_ERROR(CommitBarrier());

  // 2. The anchor image, then a barrier: the commit point.
  STEGFS_RETURN_IF_ERROR(WriteHeaderImage(
      anchor_block_,
      crypto::FileSignature(AnchorName(physical_name_), access_key_),
      static_cast<uint32_t>(header_block_)));
  STEGFS_RETURN_IF_ERROR(CommitBarrier());

  // 3. The primary, in place. No barrier needed: if it tears, Open takes
  //    the committed anchor image and heals it.
  STEGFS_RETURN_IF_ERROR(WriteHeaderImage(
      header_block_, header_.signature,
      static_cast<uint32_t>(anchor_block_)));
  header_dirty_ = false;

  // 4. With the shrunken pool committed, staged releases may finally
  //    clear their bitmap bits (lost on crash = leaked-as-abandoned,
  //    never corruption).
  if (!pending_bitmap_frees_.empty()) {
    auto alloc = LockAlloc(vol_.alloc_mu);
    for (uint32_t b : pending_bitmap_frees_) {
      STEGFS_RETURN_IF_ERROR(vol_.bitmap->Free(b));
    }
    pending_bitmap_frees_.clear();
  }
  return Status::OK();
}

Status HiddenObject::ScrubShares(RedundancyScrubReport* report) {
  if (removed_) return Status::FailedPrecondition("object was removed");
  if (redundancy_ == nullptr) return Status::OK();
  bool dirty = false;
  RedundancyIoCtx ctx{&header_.inode, &store_, &allocator_, io_.mapper(),
                      &dirty};
  STEGFS_RETURN_IF_ERROR(redundancy_->Scrub(ctx, report));
  if (dirty || redundancy_->dirty()) header_dirty_ = true;
  return Status::OK();
}

StatusOr<std::vector<uint64_t>> HiddenObject::ShareBlocksForTesting(
    uint64_t stripe) {
  if (redundancy_ == nullptr) {
    return Status::FailedPrecondition("object has no redundancy policy");
  }
  bool dirty = false;
  RedundancyIoCtx ctx{&header_.inode, &store_, &allocator_, io_.mapper(),
                      &dirty};
  std::vector<uint64_t> out;
  STEGFS_RETURN_IF_ERROR(
      redundancy_->ShareBlocksForTesting(ctx, stripe, &out));
  return out;
}

Status HiddenObject::Remove() {
  if (removed_) return Status::FailedPrecondition("object already removed");
  if (vol_.durable) {
    // Commit the removal FIRST: obliterate both header images and make
    // that durable, so no crash state can resurrect a half-freed object
    // whose blocks are being handed back to the allocator below.
    {
      auto alloc = LockAlloc(vol_.alloc_mu);
      std::vector<uint8_t> noise(vol_.layout.block_size);
      vol_.rng->FillBytes(noise.data(), noise.size());
      STEGFS_RETURN_IF_ERROR(vol_.cache->Write(header_block_, noise.data()));
      if (anchor_block_ != 0) {
        vol_.rng->FillBytes(noise.data(), noise.size());
        STEGFS_RETURN_IF_ERROR(
            vol_.cache->Write(anchor_block_, noise.data()));
      }
    }
    STEGFS_RETURN_IF_ERROR(CommitBarrier());
    // Reclaim everything. Frees lost to a crash from here on are leaked
    // allocated-but-unreferenced blocks — absorbed as abandoned, never
    // corruption.
    if (redundancy_ != nullptr) {
      STEGFS_RETURN_IF_ERROR(redundancy_->ReleaseAll(&allocator_));
    }
    STEGFS_RETURN_IF_ERROR(
        io_.mapper()->FreeFrom(&header_.inode, 0, &store_, &allocator_));
    auto alloc = LockAlloc(vol_.alloc_mu);
    for (uint32_t b : deferred_returns_) {
      STEGFS_RETURN_IF_ERROR(vol_.bitmap->Free(b));
    }
    deferred_returns_.clear();
    for (uint32_t b : header_.free_pool) {
      STEGFS_RETURN_IF_ERROR(vol_.bitmap->Free(b));
    }
    header_.free_pool.clear();
    for (uint32_t b : pending_bitmap_frees_) {
      STEGFS_RETURN_IF_ERROR(vol_.bitmap->Free(b));
    }
    pending_bitmap_frees_.clear();
    unscrubbed_.clear();
    STEGFS_RETURN_IF_ERROR(vol_.bitmap->Free(header_block_));
    if (anchor_block_ != 0) {
      STEGFS_RETURN_IF_ERROR(vol_.bitmap->Free(anchor_block_));
    }
    removed_ = true;
    return Status::OK();
  }
  // Free data + indirect blocks into the pool, then drain the entire pool
  // back to the file system. FreeFrom drives the allocator, which takes the
  // allocation lock per call — so it must not be held here yet.
  if (redundancy_ != nullptr) {
    STEGFS_RETURN_IF_ERROR(redundancy_->ReleaseAll(&allocator_));
  }
  STEGFS_RETURN_IF_ERROR(
      io_.mapper()->FreeFrom(&header_.inode, 0, &store_, &allocator_));
  auto alloc = LockAlloc(vol_.alloc_mu);
  for (uint32_t b : header_.free_pool) {
    STEGFS_RETURN_IF_ERROR(vol_.bitmap->Free(b));
  }
  header_.free_pool.clear();
  unscrubbed_.clear();  // released blocks are no longer ours to scrub
  // Obliterate the header so the signature can never be located again, then
  // release its block.
  std::vector<uint8_t> noise(vol_.layout.block_size);
  vol_.rng->FillBytes(noise.data(), noise.size());
  STEGFS_RETURN_IF_ERROR(vol_.cache->Write(header_block_, noise.data()));
  STEGFS_RETURN_IF_ERROR(vol_.bitmap->Free(header_block_));
  removed_ = true;
  return Status::OK();
}

}  // namespace stegfs
