// HiddenObject: one hidden file or hidden directory (paper section 3.1).
//
// Everything about the object — header, inode pointers, data, indirect
// blocks, and its internal pool of free blocks — lives in bitmap-allocated
// blocks that are encrypted under the object's access key (FAK) and listed
// in no central structure. Without the (name, key) pair the object's blocks
// are indistinguishable from abandoned blocks and dummy files.
//
// Block allocation goes through the internal free pool:
//   - the pool is topped up to `free_pool_max` with uniformly random free
//     blocks whenever it drains below `free_pool_min`,
//   - extension pops a *random* pool entry (so even an intruder who diffs
//     bitmap snapshots cannot tell data blocks from pool blocks, nor their
//     order),
//   - truncation pushes freed blocks back into the pool; beyond
//     `free_pool_max` the excess returns to the file system.
#ifndef STEGFS_CORE_HIDDEN_OBJECT_H_
#define STEGFS_CORE_HIDDEN_OBJECT_H_

#include <array>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "blockdev/async_block_device.h"
#include "blockdev/block_device.h"
#include "cache/buffer_cache.h"
#include "concurrency/group_barrier.h"
#include "core/hidden_header.h"
#include "core/locator.h"
#include "core/redundancy.h"
#include "crypto/block_crypter.h"
#include "fs/bitmap.h"
#include "fs/block_store.h"
#include "fs/file_io.h"
#include "fs/layout.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

// Shared volume context handed to hidden objects by the StegFs facade. All
// pointers are non-owning and must outlive the object.
struct HiddenVolume {
  BufferCache* cache = nullptr;
  BlockBitmap* bitmap = nullptr;
  Layout layout;
  StegParams params;
  Xoshiro* rng = nullptr;  // placement randomness (pool refills)
  uint32_t probe_limit = 10000;
  // When non-null, the volume's allocation lock: it serializes every
  // compound bitmap/free-pool mutation AND every draw from the shared
  // `rng`. StegFs sets it so hidden objects on different sessions can run
  // in parallel; single-threaded users (tests, benches, the baselines) may
  // leave it null for exactly the historical behavior. Lock order: taken
  // below the per-object lock, above the bitmap/cache internal locks.
  std::mutex* alloc_mu = nullptr;
  // Readahead window (file blocks) hinted after every extent read; only
  // effective when the shared cache has a prefetch pool attached.
  uint32_t readahead = 0;
  // Durable-commit wiring (Durability::kJournal mounts). When `durable`
  // is set, every header update runs the dual-header commit protocol
  // (anchor image -> barrier -> primary image) and Sync/Remove issue real
  // write barriers through `device` (draining `engine` first — the async
  // half of the barrier contract). All three stay null/false for the
  // historical behavior every seeded test pins.
  BlockDevice* device = nullptr;
  AsyncBlockDevice* engine = nullptr;
  bool durable = false;
  // When set, commit barriers route through this volume-wide coalescer
  // instead of issuing their own drain/write-back/sync — concurrent
  // hidden commits and plain journal batches then share device syncs.
  concurrency::GroupBarrier* barrier = nullptr;
  // Volume-wide share accounting for redundant objects (may stay null:
  // counters are then simply not kept).
  RedundancyStats* red_stats = nullptr;
};

// Threading contract: one HiddenObject instance is used by one thread at a
// time (StegFs serializes per-instance access behind the session manager's
// per-object lock). Cross-instance shared state — bitmap, cache, and the
// shared rng — is protected by those components' own locks plus the
// volume-wide allocation lock in HiddenVolume::alloc_mu.
class HiddenObject {
 public:
  // Creates a new hidden object. Fails with AlreadyExists if an object with
  // the same (name, key) already exists on the volume. `redundancy`
  // selects the extent protection policy, fixed for the object's lifetime
  // and persisted in its header.
  static StatusOr<std::unique_ptr<HiddenObject>> Create(
      const HiddenVolume& vol, const std::string& physical_name,
      const std::string& access_key, HiddenType type,
      RedundancyPolicy redundancy = RedundancyPolicy());

  // Opens an existing hidden object; NotFound if (name, key) match nothing.
  static StatusOr<std::unique_ptr<HiddenObject>> Open(
      const HiddenVolume& vol, const std::string& physical_name,
      const std::string& access_key);

  ~HiddenObject();
  HiddenObject(const HiddenObject&) = delete;
  HiddenObject& operator=(const HiddenObject&) = delete;

  HiddenType type() const { return header_.type; }
  uint64_t size() const { return header_.inode.size; }
  uint64_t header_block() const { return header_block_; }
  // Locator probes used by the last Create/Open (A3 ablation metric).
  uint32_t last_probe_count() const { return last_probes_; }
  uint32_t pool_size() const {
    return static_cast<uint32_t>(header_.free_pool.size());
  }
  const RedundancyPolicy& redundancy_policy() const {
    return header_.redundancy;
  }

  Status Read(uint64_t offset, uint64_t n, std::string* out);
  StatusOr<std::string> ReadAll();
  Status Write(uint64_t offset, std::string_view data);
  // Replaces the whole content.
  Status WriteAll(std::string_view data);
  Status Truncate(uint64_t new_size);

  // Persists the header block (inode pointers, size, pool). Data blocks
  // are written through immediately; only the header is deferred. On a
  // durable volume this is the object's COMMIT POINT, run as the
  // dual-header protocol:
  //   1. barrier: data + bitmap durable (nothing the new header
  //      references may be garbage after a crash),
  //   2. the new header image — seq+1, checksummed, chained to its
  //      partner — is written to the object's ANCHOR block (claimed at
  //      create via a salted locator sequence, so it is recoverable
  //      without the primary and looks like any other random block),
  //      then a barrier makes it durable: THE commit,
  //   3. the primary header is rewritten in place (torn? the anchor has
  //      the committed image; lost entirely? the salted probe finds the
  //      anchor and restores the primary — Open does both).
  // Data blocks freed since the last Sync re-enter the pool only here
  // (step 0) and pool blocks leave for the bitmap only after step 2, so
  // no uncommitted operation can overwrite a block the committed on-disk
  // state still references.
  Status Sync();
  uint64_t anchor_block() const { return anchor_block_; }

  // Destroys the object: frees data, indirect, pool and header blocks and
  // overwrites the header with fresh noise so the signature is gone. The
  // object must not be used afterwards.
  Status Remove();

  // Audits and heals every stripe of a redundant object (no-op for policy
  // kNone). Called by steg_fsck's hidden-side scrub; accumulates into
  // *report. Healing changes are persisted at the next Sync.
  Status ScrubShares(RedundancyScrubReport* report);

  // Fault-injection hooks for the loss-matrix tests: device blocks of
  // stripe `stripe` in share order (0 = hole/unallocated), and the
  // current stripe count.
  StatusOr<std::vector<uint64_t>> ShareBlocksForTesting(uint64_t stripe);
  uint64_t StripeCountForTesting() const {
    return redundancy_ != nullptr ? redundancy_->StripeCountForTesting() : 0;
  }

 private:
  class PoolAllocator : public BlockAllocator {
   public:
    explicit PoolAllocator(HiddenObject* obj) : obj_(obj) {}
    StatusOr<uint64_t> AllocateBlock() override;
    Status FreeBlock(uint64_t block) override;

   private:
    HiddenObject* obj_;
  };

  HiddenObject(const HiddenVolume& vol, const std::string& physical_name,
               const std::string& access_key);

  // Salted name for the anchor-block locator sequence ('\x01' can never
  // appear at that position in a real uid||'\0'||path physical name).
  static std::string AnchorName(const std::string& physical_name);
  // Write barrier: drain the async engine, flush the cache, sync the
  // device (the durable path's ordering primitive).
  Status CommitBarrier();
  // Encodes + writes one header image (primary or anchor role) through
  // the encrypted store.
  Status WriteHeaderImage(uint64_t at_block, const std::array<uint8_t, 32>& sig,
                          uint32_t partner);

  // Refills the pool to free_pool_max with random free blocks. Freshly
  // acquired blocks may hold stale plaintext (e.g. from a deleted plain
  // file); they are queued for scrubbing and overwritten with noise at the
  // next Sync unless a data write claims them first — so steady-state
  // write traffic is one device write per data block, not two.
  Status TopUpPool();
  // Releases random pool entries back to the file system until the pool is
  // at most free_pool_max.
  Status ReleaseExcess();
  // *Locked variants assume vol_.alloc_mu (if any) is already held.
  Status TopUpPoolLocked();
  Status ReleaseExcessLocked();
  uint32_t EffectivePoolMax() const;
  // Instantiates the redundancy manager for header_.redundancy and hooks
  // it into the data path.
  void AttachRedundancy();

  HiddenVolume vol_;
  std::string physical_name_;
  std::string access_key_;
  crypto::BlockCrypter crypter_;
  EncryptedBlockStore store_;
  FileIo io_;
  PoolAllocator allocator_;
  HiddenHeader header_;
  // Non-null iff header_.redundancy is enabled; owns the stripe map and
  // implements the FileIo redundancy hook.
  std::unique_ptr<RedundancyManager> redundancy_;
  uint64_t header_block_ = 0;
  uint64_t anchor_block_ = 0;  // durable volumes only (0 otherwise)
  uint32_t last_probes_ = 0;
  bool header_dirty_ = false;
  bool removed_ = false;
  // Pool entries acquired since the last Sync that still hold whatever the
  // block contained before (scrubbed with noise at Sync).
  std::set<uint32_t> unscrubbed_;
  // Durable mode: data blocks freed since the last Sync. They re-enter
  // the pool only at the next commit — reusing one earlier would
  // overwrite a block the committed on-disk header still references.
  std::vector<uint32_t> deferred_returns_;
  // Durable mode: pool blocks released toward the bitmap, bit-cleared
  // only after the releasing header image has committed (the committed
  // pool must always be a subset of the bitmap's allocated set).
  std::vector<uint32_t> pending_bitmap_frees_;
};

}  // namespace stegfs

#endif  // STEGFS_CORE_HIDDEN_OBJECT_H_
