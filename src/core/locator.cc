#include "core/locator.h"

#include <cstring>
#include <vector>

#include "crypto/keys.h"

namespace stegfs {

CandidateSequence::CandidateSequence(const std::string& physical_name,
                                     const std::string& access_key,
                                     const Layout& layout)
    : prng_(crypto::LocatorSeed(physical_name, access_key),
            layout.data_blocks()),
      data_start_(layout.data_start) {}

uint64_t CandidateSequence::Next() { return data_start_ + prng_.Next(); }

StatusOr<LocateResult> HeaderLocator::ClaimHeaderBlock(
    const std::string& physical_name, const std::string& access_key) {
  CandidateSequence seq(physical_name, access_key, layout_);
  LocateResult result;
  for (uint32_t i = 0; i < probe_limit_; ++i) {
    uint64_t candidate = seq.Next();
    ++result.probes;
    if (!bitmap_->IsAllocated(candidate)) {
      Status claimed = bitmap_->Allocate(candidate);
      if (claimed.IsFailedPrecondition()) {
        // Lost an allocation race: another session claimed the candidate
        // between the probe and the test-and-set. The next candidate is as
        // good as this one was.
        continue;
      }
      STEGFS_RETURN_IF_ERROR(claimed);
      result.header_block = candidate;
      return result;
    }
  }
  return Status::NoSpace("no free candidate block for hidden header");
}

StatusOr<LocateResult> HeaderLocator::FindHeader(
    const std::string& physical_name, const std::string& access_key,
    const crypto::BlockCrypter& crypter) {
  CandidateSequence seq(physical_name, access_key, layout_);
  crypto::Sha256Digest expect =
      crypto::FileSignature(physical_name, access_key);
  std::vector<uint8_t> buf(layout_.block_size);
  LocateResult result;
  for (uint32_t i = 0; i < probe_limit_; ++i) {
    uint64_t candidate = seq.Next();
    ++result.probes;
    if (!bitmap_->IsAllocated(candidate)) continue;
    STEGFS_RETURN_IF_ERROR(cache_->Read(candidate, buf.data()));
    crypter.DecryptBlock(candidate, buf.data(), buf.size());
    if (std::memcmp(buf.data(), expect.data(), expect.size()) == 0) {
      result.header_block = candidate;
      return result;
    }
  }
  return Status::NotFound("hidden object not found (name/key mismatch?)");
}

}  // namespace stegfs
